"""The compute-bound divide workload (Sec. III-B).

The paper's noise-characterization benchmark is "a large number of
back-to-back double-precision divide instructions (``vdivpd``), the
throughput of which is exactly one instruction per 28 clock cycles on Ivy
Bridge and one instruction per 16 clock cycles on Broadwell".  Because the
ideal duration is exactly known, any measured excess is noise.

We provide both the analytic duration model (used everywhere in the
simulator) and an actual Python/NumPy divide loop that can be timed for a
real-machine noise histogram on whatever host runs this package.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import CpuSpec

__all__ = ["DivideWorkload", "measure_host_noise"]


@dataclass(frozen=True)
class DivideWorkload:
    """A fixed-length chain of dependent double-precision divides.

    Parameters
    ----------
    cpu:
        CPU constants giving the ``vdivpd`` reciprocal throughput.
    n_instructions:
        Chain length.  Use :meth:`for_duration` to size a phase.
    """

    cpu: CpuSpec
    n_instructions: int

    def __post_init__(self) -> None:
        if self.n_instructions < 1:
            raise ValueError(f"n_instructions must be >= 1, got {self.n_instructions}")

    @classmethod
    def for_duration(cls, cpu: CpuSpec, t_exec: float) -> "DivideWorkload":
        """Size the divide chain so the ideal duration is ``t_exec`` seconds."""
        if t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {t_exec}")
        per_instr = cpu.vdivpd_cycles / cpu.clock_hz
        return cls(cpu=cpu, n_instructions=max(1, round(t_exec / per_instr)))

    @property
    def ideal_duration(self) -> float:
        """Exact execution time in seconds on a noise-free machine."""
        return self.n_instructions * self.cpu.vdivpd_cycles / self.cpu.clock_hz

    def run_kernel(self, value: float = 1.0000001) -> float:
        """Execute an actual dependent divide chain; returns the result.

        This is the Python stand-in for the assembly loop: a serial
        dependency chain of divisions.  NumPy is used in blocks to keep
        interpreter overhead bounded while preserving the serial semantics
        between blocks.
        """
        x = np.float64(value)
        divisor = np.float64(1.0000000001)
        block = np.full(1024, divisor)
        remaining = self.n_instructions
        while remaining > 0:
            n = min(remaining, block.size)
            # cumulative division: x / d1 / d2 / ... (serial chain)
            x = x / np.prod(block[:n])
            remaining -= n
        return float(x)


def measure_host_noise(
    workload: DivideWorkload,
    n_phases: int,
    warmup: int = 3,
) -> np.ndarray:
    """Time ``n_phases`` executions of the divide chain on *this* host.

    Returns the per-phase deviation from the minimum observed duration in
    seconds — an empirical noise histogram in the spirit of Fig. 3 (the
    minimum stands in for the unknowable ideal duration; on a quiet machine
    it is a tight lower bound).  The samples can be fed back into the
    simulator via :class:`repro.sim.noise.TraceNoise`.
    """
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    for _ in range(warmup):
        workload.run_kernel()
    durations = np.empty(n_phases)
    for i in range(n_phases):
        t0 = time.perf_counter()
        workload.run_kernel()
        durations[i] = time.perf_counter() - t0
    return durations - durations.min()
