"""Strict plain-data section reader shared by the spec languages.

Both declarative layers — scenarios (:mod:`repro.scenarios.spec`) and
reports (:mod:`repro.reports.spec`) — parse TOML/JSON documents with the
same discipline: typed ``take``s per field, a ``finish`` that rejects
unknown keys, and every failure naming the exact dotted path of the
offending entry.  :class:`StrictFields` is that reader, parameterized by
the domain's error constructor so each layer raises its own exception
type (``ScenarioError`` / ``ReportError``) with its own context — one
implementation, no drift between the two spec languages.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

__all__ = ["StrictFields"]


class StrictFields:
    """Strict reader over one section's mapping: typed takes + leftovers check.

    Parameters
    ----------
    data:
        The section's mapping (``None`` reads as empty).
    path:
        Dotted path of the section within the document (``""`` for the
        document root).
    make_error:
        ``make_error(message, path) -> Exception`` building the domain
        error with the field path attached.
    root_label:
        What to call the document root in the unknown-key message
        (e.g. ``"scenario"`` / ``"report"``).
    """

    def __init__(self, data: Any, path: str,
                 make_error: "Callable[[str, str], Exception]",
                 root_label: str = "document") -> None:
        self.path = path
        self._make_error = make_error
        self._root_label = root_label
        if data is None:
            data = {}
        if not isinstance(data, Mapping):
            raise make_error(
                f"expected a table/mapping, got {type(data).__name__}", path)
        self.data = dict(data)

    def _sub(self, key: str) -> str:
        return f"{self.path}.{key}" if self.path else key

    def take(self, key: str, kind: str, default: Any = None,
             required: bool = False) -> Any:
        if key not in self.data:
            if required:
                raise self._make_error(
                    f"required field is missing ({kind})", self._sub(key))
            return default
        value = self.data.pop(key)
        return self._coerce(value, kind, self._sub(key))

    def _coerce(self, value: Any, kind: str, path: str) -> Any:
        ok: bool
        if kind == "int":
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif kind == "float":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            if ok:
                value = float(value)
        elif kind == "bool":
            ok = isinstance(value, bool)
        elif kind == "str":
            ok = isinstance(value, str)
        elif kind == "list":
            ok = isinstance(value, (list, tuple))
            if ok:
                value = list(value)
        elif kind == "table":
            ok = isinstance(value, Mapping)
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown field kind {kind!r}")
        if not ok:
            raise self._make_error(
                f"expected {kind}, got {type(value).__name__} ({value!r})",
                path)
        return value

    def finish(self) -> None:
        if self.data:
            keys = ", ".join(sorted(map(repr, self.data)))
            where = self.path or self._root_label
            raise self._make_error(
                f"unknown key(s) {keys} in '{where}' section", self.path)
