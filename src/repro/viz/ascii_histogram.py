"""ASCII rendering of noise histograms (the Fig. 3 panels in a terminal)."""

from __future__ import annotations

import numpy as np

from repro.analysis.histogram import NoiseHistogram

__all__ = ["render_histogram"]


def render_histogram(
    hist: NoiseHistogram,
    width: int = 60,
    max_rows: int = 20,
    log_counts: bool = True,
    unit: float = 1e-6,
    unit_label: str = "µs",
) -> str:
    """Render a histogram as horizontal bars.

    Parameters
    ----------
    hist:
        The binned noise distribution.
    width:
        Maximum bar width in characters.
    max_rows:
        At most this many rows; bins are re-grouped if there are more, and
        trailing all-empty bins are dropped.
    log_counts:
        Scale bars by log10(count+1) — noise histograms span orders of
        magnitude (the paper plots them on log axes).
    unit / unit_label:
        Scale for the bin labels (default µs).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")

    counts = hist.counts
    edges = hist.bin_edges
    # Drop trailing empty bins.
    nonzero = np.nonzero(counts)[0]
    if nonzero.size:
        counts = counts[: nonzero[-1] + 1]
        edges = edges[: nonzero[-1] + 2]
    # Re-group to at most max_rows.
    if len(counts) > max_rows:
        group = -(-len(counts) // max_rows)
        grouped = [counts[i : i + group].sum() for i in range(0, len(counts), group)]
        new_edges = [edges[i] for i in range(0, len(counts), group)] + [edges[-1]]
        counts = np.asarray(grouped)
        edges = np.asarray(new_edges)

    values = np.log10(counts + 1.0) if log_counts else counts.astype(float)
    peak = values.max() if values.size else 1.0
    if peak == 0:
        peak = 1.0

    label_w = max(
        len(f"{edges[i] / unit:.1f}-{edges[i + 1] / unit:.1f}")
        for i in range(len(counts))
    )
    lines = [
        f"{'bin [' + unit_label + ']':>{label_w}} | count"
        + (" (log-scaled bars)" if log_counts else "")
    ]
    for i, count in enumerate(counts):
        label = f"{edges[i] / unit:.1f}-{edges[i + 1] / unit:.1f}"
        bar = "#" * int(round(values[i] / peak * width))
        lines.append(f"{label:>{label_w}} |{bar} {int(count)}")
    lines.append(
        f"{'':>{label_w}}  n={hist.n_samples}, mean={hist.mean / unit:.2f} "
        f"{unit_label}, max={hist.maximum / unit:.1f} {unit_label}"
    )
    return "\n".join(lines)
