"""Terminal visualization: ASCII timelines, histograms, and text tables."""

from repro.viz.ascii_histogram import render_histogram
from repro.viz.ascii_timeline import render_idle_heatmap, render_timeline
from repro.viz.tables import format_series, format_table

__all__ = [
    "format_series",
    "format_table",
    "render_histogram",
    "render_idle_heatmap",
    "render_timeline",
]
