"""Plain-text tables and series for the experiment drivers.

Every experiment prints its figure's data as aligned text tables so the
reproduction can be compared against the paper without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as an aligned, pipe-separated text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    if not headers:
        raise ValueError("need at least one column")
    str_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(float_fmt.format(v))
            else:
                cells.append(str(v))
        if len(cells) != len(headers):
            raise ValueError(
                f"row with {len(cells)} cells does not match {len(headers)} headers"
            )
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in str_rows:
        for i, c in enumerate(cells):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for cells in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    float_fmt: str = "{:.4g}",
) -> str:
    """Two-column series table (one figure line = one series)."""
    if len(x) != len(y):
        raise ValueError(f"series length mismatch: {len(x)} vs {len(y)}")
    return format_table([x_label, y_label], zip(x, y), float_fmt=float_fmt)
