"""ASCII rendering of rank/time diagrams (the paper's Figs. 4–7, 9).

Terminal-friendly reproduction of the timeline figures: one text row per
rank, wall-clock time quantized into character columns, with

- ``.`` execution (the figures' white),
- ``D`` injected delay (blue),
- ``#`` idle / communication delay (red),
- `` `` (space) time before the rank's first/after its last activity.

The renderer works on any run the analysis layer understands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.timeline import IntervalKind, full_timeline
from repro.core.timing import RunTiming

__all__ = ["render_timeline", "render_idle_heatmap"]

_GLYPHS = {
    IntervalKind.EXEC: ".",
    IntervalKind.DELAY: "D",
    IntervalKind.IDLE: "#",
}

# Paint precedence: idle over delay over exec when intervals share a column.
_PRECEDENCE = {IntervalKind.EXEC: 0, IntervalKind.DELAY: 1, IntervalKind.IDLE: 2}


def render_timeline(
    run,
    width: int = 100,
    base_exec: float | None = None,
    rank_labels: bool = True,
) -> str:
    """Render the full rank/time diagram as a multi-line string.

    Parameters
    ----------
    run:
        ``Trace``, ``LockstepResult`` or ``RunTiming``.
    width:
        Character columns spanning the total runtime.
    base_exec:
        Nominal phase length used to split EXEC vs DELAY (see
        :func:`repro.analysis.timeline.rank_timeline`).
    rank_labels:
        Prefix each row with the rank number.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    timing = RunTiming.of(run)
    total = timing.total_runtime()
    if total <= 0:
        raise ValueError("run has zero duration; nothing to render")
    scale = width / total

    lines: list[str] = []
    label_w = len(str(timing.n_ranks - 1)) if rank_labels else 0
    timelines = full_timeline(timing, base_exec=base_exec)
    for rank in range(timing.n_ranks - 1, -1, -1):  # rank 0 at the bottom, like the figures
        row = [" "] * width
        precedence = [-1] * width
        for iv in timelines[rank]:
            c0 = int(iv.start * scale)
            c1 = max(c0 + 1, int(np.ceil(iv.end * scale)))
            for c in range(c0, min(c1, width)):
                p = _PRECEDENCE[iv.kind]
                if p > precedence[c]:
                    precedence[c] = p
                    row[c] = _GLYPHS[iv.kind]
        prefix = f"{rank:>{label_w}} |" if rank_labels else "|"
        lines.append(prefix + "".join(row))
    footer = (" " * (label_w + 1) if rank_labels else "") + "+" + "-" * (width - 1)
    time_lbl = (" " * (label_w + 1) if rank_labels else "") + f"0{'':>{width - 12}}{total * 1e3:8.2f} ms"
    lines.append(footer)
    lines.append(time_lbl)
    return "\n".join(lines)


def render_idle_heatmap(run, threshold: float | None = None) -> str:
    """Step-quantized idle map: one character per (rank, step).

    ``#`` marks steps whose Waitall exceeded ``threshold`` (default: the
    analysis layer's wave threshold), ``+`` above half the threshold,
    ``.`` quiet.  Rows are ranks (top = highest), columns are steps —
    a compact view of wave propagation in step space.
    """
    timing = RunTiming.of(run)
    if threshold is None:
        from repro.core.idle_wave import default_threshold

        threshold = default_threshold(timing)
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    lines = []
    label_w = len(str(timing.n_ranks - 1))
    for rank in range(timing.n_ranks - 1, -1, -1):
        chars = []
        for step in range(timing.n_steps):
            idle = timing.idle[rank, step]
            if idle > threshold:
                chars.append("#")
            elif idle > 0.5 * threshold:
                chars.append("+")
            else:
                chars.append(".")
        lines.append(f"{rank:>{label_w}} |" + "".join(chars))
    lines.append(" " * (label_w + 1) + "+" + "-" * max(0, timing.n_steps - 1))
    lines.append(" " * (label_w + 2) + f"steps 0..{timing.n_steps - 1}")
    return "\n".join(lines)
