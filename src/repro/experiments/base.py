"""Shared experiment infrastructure.

Every paper figure has a driver module exposing ``run(fast=..., seed=...)
-> ExperimentResult``.  Results carry printable text tables (the paper's
rows/series) plus the raw data dictionaries the tests and benches assert
against.

Campaign-style drivers (many independent simulation runs) additionally
accept ``runtime: RuntimeOptions`` and execute their runs through the
parallel campaign runtime (:mod:`repro.runtime`): sharded across worker
processes and cached in a content-addressed on-disk result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "RuntimeOptions"]


@dataclass(frozen=True)
class RuntimeOptions:
    """How a campaign experiment should execute its runs.

    Attributes
    ----------
    jobs:
        Worker processes: 1 (default) runs serially in-process, N>1
        shards over a process pool, 0 auto-detects the CPU count.
    cache_dir:
        Directory of the content-addressed result store, or ``None``
        to recompute everything in memory.
    use_cache:
        Set ``False`` (CLI ``--no-cache``) to bypass the store even
        when ``cache_dir`` is configured.
    """

    jobs: int = 1
    cache_dir: "str | Path | None" = None
    use_cache: bool = True

    def store(self):
        """The configured :class:`~repro.runtime.store.ResultStore`, or None."""
        if self.cache_dir is None or not self.use_cache:
            return None
        from repro.runtime.store import ResultStore

        return ResultStore(self.cache_dir)


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    name:
        Experiment id ("fig4", "eq2", ...).
    title:
        One-line description (matches the paper's figure caption theme).
    tables:
        Ordered mapping of section title -> pre-rendered text table/diagram.
    data:
        Raw values for programmatic checks (tests, benches, EXPERIMENTS.md).
    notes:
        Free-form observations (e.g. paper-vs-measured comparisons).
    """

    name: str
    title: str
    tables: dict[str, str] = field(default_factory=dict)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full printable report of the experiment."""
        parts = [f"=== {self.name}: {self.title} ==="]
        for section, table in self.tables.items():
            parts.append(f"\n--- {section} ---")
            parts.append(table)
        if self.notes:
            parts.append("\nNotes:")
            for n in self.notes:
                parts.append(f"  * {n}")
        return "\n".join(parts)
