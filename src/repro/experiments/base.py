"""Shared experiment infrastructure.

Every paper figure has a driver module exposing ``run(fast=..., seed=...)
-> ExperimentResult``.  Results carry printable text tables (the paper's
rows/series) plus the raw data dictionaries the tests and benches assert
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    name:
        Experiment id ("fig4", "eq2", ...).
    title:
        One-line description (matches the paper's figure caption theme).
    tables:
        Ordered mapping of section title -> pre-rendered text table/diagram.
    data:
        Raw values for programmatic checks (tests, benches, EXPERIMENTS.md).
    notes:
        Free-form observations (e.g. paper-vs-measured comparisons).
    """

    name: str
    title: str
    tables: dict[str, str] = field(default_factory=dict)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full printable report of the experiment."""
        parts = [f"=== {self.name}: {self.title} ==="]
        for section, table in self.tables.items():
            parts.append(f"\n--- {section} ---")
            parts.append(table)
        if self.notes:
            parts.append("\nNotes:")
            for n in self.notes:
                parts.append(f"  * {n}")
        return "\n".join(parts)
