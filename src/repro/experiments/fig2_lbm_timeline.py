"""Fig. 2 — LBM desynchronization timeline.

The paper runs a D3Q19-SRT LBM solver (302³ cells, 100 ranks on five Emmy
nodes, 1-D decomposition, ≥30 % communication share) for 10⁴ steps and
shows per-rank wall-clock positions at selected time steps against the
nonoverlapping model: a global wave pattern with fundamental wavelength
equal to the system size emerges, the pattern drifts, and the actual
runtime ends up a few percent *faster* than the model.

We reproduce the same study on the saturation simulator.  The default step
count is reduced (the structure emerges within a few hundred steps); pass
``fast=False`` for the full 10⁴.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fourier import skew_profile, skew_spectrum
from repro.cluster import EMMY
from repro.experiments.base import ExperimentResult
from repro.sim.saturation import simulate_saturation
from repro.sim.topology import CommDomain
from repro.viz.tables import format_table
from repro.workloads.lbm import LbmWorkload, lbm_saturation_config

__all__ = ["run", "lbm_model_time_per_step"]


def lbm_model_time_per_step(workload: LbmWorkload, machine=EMMY) -> float:
    """Nonoverlapping Eq. 1-style model for one LBM step.

    Execution: per-rank traffic over the rank's fair share of socket
    bandwidth; communication: bidirectional halo exchange over the network.
    """
    ranks_per_socket = machine.topology.cores_per_socket
    b_rank = machine.b_socket / ranks_per_socket
    t_exec = workload.work_bytes_per_rank / b_rank
    t_comm = 2 * machine.network.transfer_time(int(workload.halo_bytes), CommDomain.INTER_NODE)
    return t_exec + t_comm


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 2 data: snapshots, wavelength, runtime deviation."""
    workload = LbmWorkload()
    n_steps = 600 if fast else 10_000
    snap_steps = [s for s in (1, 20, 60, 100, 300, 500, 1000, 5000, n_steps - 1) if s < n_steps]

    machine = EMMY.with_nodes(8)
    cfg = lbm_saturation_config(machine, workload=workload, n_steps=n_steps, seed=seed)
    res = simulate_saturation(cfg)

    t_model = lbm_model_time_per_step(workload, machine)

    rows = []
    snap_data = []
    for s in snap_steps:
        actual = res.completion[:, s]
        model_pos = (s + 1) * t_model
        spread = float(actual.max() - actual.min())
        spec = skew_spectrum(res, s)
        wavelength = spec.dominant_wavelength() if spread > 0 else float("nan")
        rows.append(
            (s, float(actual.mean()), model_pos, spread * 1e3, wavelength)
        )
        snap_data.append(
            {"step": s, "mean_time": float(actual.mean()), "model_time": model_pos,
             "spread": spread, "wavelength": wavelength,
             "profile": skew_profile(res, s)}
        )
    table = format_table(
        ["step", "mean time [s]", "model time [s]", "spread [ms]", "dominant wavelength [ranks]"],
        rows,
    )

    runtime = float(res.completion[:, -1].max())
    model_runtime = n_steps * t_model
    deviation = (model_runtime - runtime) / model_runtime

    late = snap_data[-1]
    notes = [
        "Paper: a global wave pattern with wavelength ~= system size (100 ranks) "
        "emerges by t=500 and drifts; runtime beats the model by ~2.5%.",
        f"Reproduced: dominant wavelength at step {late['step']}: "
        f"{late['wavelength']:.1f} ranks (system size = {workload.n_ranks}).",
        f"Reproduced: runtime {runtime:.3f}s vs model {model_runtime:.3f}s "
        f"-> {'faster' if deviation > 0 else 'slower'} by {abs(deviation) * 100:.2f}%.",
        f"Communication share of model time: "
        f"{(2 * machine.network.transfer_time(int(workload.halo_bytes), CommDomain.INTER_NODE)) / t_model * 100:.0f}% "
        "(paper: >= 30%).",
    ]
    return ExperimentResult(
        name="fig2",
        title="LBM (D3Q19) timeline snapshots vs. nonoverlapping model",
        tables={"snapshots": table},
        data={
            "snapshots": snap_data,
            "runtime": runtime,
            "model_runtime": model_runtime,
            "deviation": deviation,
            "n_steps": n_steps,
        },
        notes=notes,
    )
