"""Fig. 5 — all eight propagation flavors.

A scan of {eager, rendezvous} × {unidirectional, bidirectional} ×
{open, periodic} on 18 ranks (one process per node), with a 4.5-phase
delay injected at rank 5.  Message sizes follow the paper: 16384 B for the
eager row, 31080 doubles (248640 B) for the rendezvous row, with the eager
limit at 131072 B.

Expected mechanisms (all asserted by the integration tests):

- (a/b) eager unidirectional: wave moves only upward; on a periodic ring
  it wraps and dies at the injection rank.
- (c/d) eager bidirectional: waves move both ways; on a ring they meet at
  the antipodal rank (14 for source 5 on 18 ranks) and cancel.
- (e/f) rendezvous unidirectional: backward propagation appears (the
  sender cannot get rid of its messages).
- (g/h) rendezvous bidirectional: speed doubles (σ = 2 in Eq. 2).
"""

from __future__ import annotations

from repro.core import (
    meeting_ranks,
    measure_speed,
    resync_step,
    silent_speed,
    wave_front,
)
from repro.experiments.base import ExperimentResult
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.topology import CommDomain
from repro.viz.ascii_timeline import render_idle_heatmap
from repro.viz.tables import format_table

__all__ = ["run", "FLAVORS", "run_flavor"]

EAGER_SIZE = 16384
RENDEZVOUS_SIZE = 31080 * 8  # "31080 B" per figure text is doubles: 248640 B
EAGER_LIMIT = 131072  # 16384 doubles

#: The eight panels: (label, size, direction, periodic).
FLAVORS: list[tuple[str, int, Direction, bool]] = [
    ("(a) eager uni open", EAGER_SIZE, Direction.UNIDIRECTIONAL, False),
    ("(b) eager uni periodic", EAGER_SIZE, Direction.UNIDIRECTIONAL, True),
    ("(c) eager bi open", EAGER_SIZE, Direction.BIDIRECTIONAL, False),
    ("(d) eager bi periodic", EAGER_SIZE, Direction.BIDIRECTIONAL, True),
    ("(e) rdv uni open", RENDEZVOUS_SIZE, Direction.UNIDIRECTIONAL, False),
    ("(f) rdv uni periodic", RENDEZVOUS_SIZE, Direction.UNIDIRECTIONAL, True),
    ("(g) rdv bi open", RENDEZVOUS_SIZE, Direction.BIDIRECTIONAL, False),
    ("(h) rdv bi periodic", RENDEZVOUS_SIZE, Direction.BIDIRECTIONAL, True),
]

SOURCE_RANK = 5
T_EXEC = 3e-3


def run_flavor(size: int, direction: Direction, periodic: bool,
               n_ranks: int = 18, n_steps: int = 20, seed: int = 0):
    """Simulate one Fig. 5 panel; returns the trace."""
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T_EXEC,
        msg_size=size,
        pattern=CommPattern(direction=direction, distance=1, periodic=periodic),
        delays=(DelaySpec(rank=SOURCE_RANK, step=0, duration=4.5 * T_EXEC),),
        seed=seed,
    )
    return simulate(
        build_lockstep_program(cfg),
        SimConfig(network=UniformNetwork(), eager_limit=EAGER_LIMIT,
                  protocol=Protocol.AUTO),
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate all eight panels with per-panel diagnostics."""
    net = UniformNetwork()
    rows = []
    tables: dict[str, str] = {}
    panel_data: dict[str, dict] = {}

    for label, size, direction, periodic in FLAVORS:
        trace = run_flavor(size, direction, periodic, seed=seed)
        up = wave_front(trace, SOURCE_RANK, +1, periodic=periodic)
        down = wave_front(trace, SOURCE_RANK, -1, periodic=periodic)
        try:
            speed_up = measure_speed(trace, SOURCE_RANK, +1, periodic=periodic).speed
        except ValueError:
            speed_up = float("nan")
        rendezvous = size > EAGER_LIMIT
        bidirectional = direction == Direction.BIDIRECTIONAL
        t_comm = net.total_pingpong_time(size, CommDomain.INTER_NODE)
        v_model = silent_speed(T_EXEC, t_comm, d=1,
                               bidirectional=bidirectional, rendezvous=rendezvous)
        meet = meeting_ranks(trace)
        resync = resync_step(trace)
        rows.append(
            (label, up.reach, down.reach, speed_up, v_model,
             ",".join(map(str, meet)) or "-", resync if resync is not None else -1)
        )
        panel_data[label] = {
            "trace": trace, "up_reach": up.reach, "down_reach": down.reach,
            "speed_up": speed_up, "model_speed": v_model,
            "meeting_ranks": meet, "resync_step": resync,
        }
        if not fast:
            tables[f"{label} idle map"] = render_idle_heatmap(trace)

    summary = format_table(
        ["panel", "up reach", "down reach", "speed up [ranks/s]",
         "Eq.2 [ranks/s]", "meet @ranks", "resync step"],
        rows,
    )
    tables = {"summary": summary, **tables}

    d_panel = panel_data["(d) eager bi periodic"]
    notes = [
        "Eager unidirectional: no downward propagation "
        f"(down reach = {panel_data['(a) eager uni open']['down_reach']}).",
        "Rendezvous unidirectional: downward propagation appears "
        f"(down reach = {panel_data['(e) rdv uni open']['down_reach']}).",
        "Bidirectional rendezvous doubles the speed: "
        f"{panel_data['(g) rdv bi open']['speed_up']:.0f} vs "
        f"{panel_data['(e) rdv uni open']['speed_up']:.0f} ranks/s.",
        "Periodic eager bidirectional: waves meet and cancel at rank(s) "
        f"{d_panel['meeting_ranks']} (paper: rank 14).",
    ]
    return ExperimentResult(
        name="fig5",
        title="Eight flavors of delay propagation (protocol × direction × boundary)",
        tables=tables,
        data=panel_data,
        notes=notes,
    )
