"""Fig. 8 — decay rate of an idle wave vs. injected noise level.

A long delay (90 ms ≈ 30 execution phases) is injected on one rank; on top
of the machine's natural noise, exponentially distributed application noise
with mean relative level ``E`` (Eq. 3) is added to every execution phase.
The wave's amplitude (idle duration) decreases as it travels; the average
decay rate β̄ (µs per rank) is measured from the wave front and reported
as median/min/max over repeated runs, for three systems:

- the InfiniBand cluster model (Emmy; natural noise included),
- the Omni-Path cluster model (Meggie; bimodal natural noise),
- the pure simulated system (no natural noise) — the LogGOPSim analogue.

Expected shape: β̄ grows with E, and "the decay rate is independent of the
existing system noise" (the three series coincide within statistics).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.statistics import RunStatistics
from repro.cluster import EMMY, MEGGIE, SIMULATED, MachineSpec
from repro.experiments.base import ExperimentResult
from repro.reports.kernels import batched_wave_front, front_decay
from repro.reports.timing import BatchedTiming
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    NoiseModel,
    simulate_lockstep_batch,
)
from repro.sim.noise import NoNoise
from repro.sim.program import build_exec_times
from repro.viz.tables import format_table

__all__ = ["run", "decay_batch", "decay_for", "DELAY_DURATION"]

T_EXEC = 3e-3
MSG_SIZE = 8192
DELAY_DURATION = 90e-3  # the paper's "long delays of 90 ms"
N_RANKS = 60
N_STEPS = 70
SOURCE = 0


class _CompositeNoise(NoiseModel):
    """Sum of natural (machine) and injected (application) noise."""

    def __init__(self, natural: NoiseModel, injected: NoiseModel) -> None:
        self.natural = natural
        self.injected = injected

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return self.natural.sample(rng, shape) + self.injected.sample(rng, shape)

    def mean(self) -> float:
        return self.natural.mean() + self.injected.mean()


def decay_batch(machine: MachineSpec, E: float,
                seeds: "list[int]") -> np.ndarray:
    """β̄ (seconds/rank) for one machine and noise level over many seeds.

    All seeds run as a *single* batched-lockstep recurrence and the decay
    rates come out of the shared report kernel
    (:func:`repro.reports.kernels.front_decay`) in one vectorized pass —
    the same code path the ``fig8_decay`` report spec runs, so experiment
    and report agree exactly (each batch slice is bit-identical to the
    per-seed engine call the driver used to make).
    """
    injected = ExponentialNoise(E * T_EXEC) if E > 0 else NoNoise()
    noise = _CompositeNoise(machine.natural_noise, injected)
    cfgs = [
        LockstepConfig(
            n_ranks=N_RANKS,
            n_steps=N_STEPS,
            t_exec=T_EXEC,
            msg_size=MSG_SIZE,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                                periodic=True),
            delays=(DelaySpec(rank=SOURCE, step=0, duration=DELAY_DURATION),),
            noise=noise,
            seed=seed,
        )
        for seed in seeds
    ]
    exec_times = np.stack([build_exec_times(cfg) for cfg in cfgs])
    res = simulate_lockstep_batch(cfgs[0], exec_times)
    batch = BatchedTiming.from_lockstep_batch(res)
    front = batched_wave_front(batch, SOURCE, direction=+1, periodic=True)
    betas = front_decay(front)["beta"]
    if not np.all(np.isfinite(betas)):
        dead = [s for s, b in zip(seeds, betas) if not np.isfinite(b)]
        raise ValueError(f"no idle wave detected from rank {SOURCE} for "
                         f"seed(s) {dead}")
    return betas


def decay_for(machine: MachineSpec, E: float, seed: int) -> float:
    """Measure β̄ (seconds/rank) for one machine, noise level, and seed."""
    return float(decay_batch(machine, E, [seed])[0])


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 8 decay-rate-vs-noise data."""
    levels = (0.02, 0.05, 0.10) if fast else (0.01, 0.02, 0.04, 0.06, 0.08, 0.10)
    n_runs = 5 if fast else 15
    systems = (("InfiniBand (Emmy)", EMMY), ("Omni-Path (Meggie)", MEGGIE),
               ("Simulated", SIMULATED))

    rows = []
    data: dict[str, list[dict]] = {}
    for sys_name, machine in systems:
        series = []
        for E in levels:
            betas = decay_batch(machine, E, [seed + r for r in range(n_runs)])
            stats = RunStatistics.from_samples(betas)
            rows.append(
                (sys_name, E * 100, stats.median * 1e6, stats.minimum * 1e6,
                 stats.maximum * 1e6)
            )
            series.append({"E": E, "stats": stats})
        data[sys_name] = series

    table = format_table(
        ["system", "E [%]", "median β̄ [µs/rank]", "min", "max"], rows
    )

    # Positive correlation check per system (Spearman-like sign test).
    monotone = {}
    for sys_name, series in data.items():
        medians = [s["stats"].median for s in series]
        monotone[sys_name] = all(b >= a for a, b in zip(medians, medians[1:]))

    notes = [
        "Paper: 'clear positive correlation between the noise level and the "
        f"decay rate'. Reproduced monotonicity: {monotone}.",
        "Paper: 'the decay rate is independent of the existing system noise' "
        "— the three series should coincide within their min/max spread.",
        f"Injected delay {DELAY_DURATION * 1e3:.0f} ms; β̄ measured along the "
        "forward wave front on a periodic 60-rank chain.",
    ]
    return ExperimentResult(
        name="fig8",
        title="Idle-wave decay rate vs. injected exponential noise level",
        tables={"decay rates": table},
        data={"series": data, "levels": levels, "n_runs": n_runs,
              "monotone": monotone},
        notes=notes,
    )
