"""Extension experiment: idle waves in memory-bound code (paper outlook).

The paper restricts its propagation analysis to core-bound execution and
names memory-bound code as future work, because saturation "bear[s] a
strong potential for desynchronization and, thus, better utilization of the
memory bandwidth".  This experiment injects the canonical one-off delay
into a *data-bound* lockstep run on the saturation simulator and contrasts
it with the core-bound baseline:

- core-bound: the wave propagates at Eq. 2's speed and the excess runtime
  equals the delay;
- memory-bound (saturated socket): the ranks behind the wave temporarily
  stream with less contention, run faster than the lockstep share, and
  claw back part of the delay — the excess runtime drops below the
  injected delay even *without* noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.sim import CommPattern, DelaySpec, Direction
from repro.sim.saturation import SaturationConfig, simulate_saturation
from repro.sim.topology import single_switch_mapping
from repro.viz.tables import format_table

__all__ = ["run"]

N_RANKS = 20  # one full node: two sockets of ten
N_STEPS = 25
DELAY = 30e-3


def _config(work_bytes: float, b_core: float, b_socket: float, delays=()):
    return SaturationConfig(
        mapping=single_switch_mapping(N_RANKS, ppn=20),
        n_steps=N_STEPS,
        work_bytes=work_bytes,
        b_core=b_core,
        b_socket=b_socket,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
        t_flight=5e-6,
        o_post=1e-6,
        delays=tuple(delays),
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Contrast delay impact between scalable and saturated regimes."""
    delay = (DelaySpec(rank=4, step=0, duration=DELAY),)

    # Core-bound stand-in: per-core bandwidth is the binding limit
    # (10 * b_core << b_socket), so execution scales and phases are fixed.
    scalable = dict(work_bytes=6.5e6, b_core=6.5e9, b_socket=1e12)
    # Memory-bound: ten ranks per socket against a saturated interface.
    saturated = dict(work_bytes=40e6, b_core=6.5e9, b_socket=40e9)

    rows = []
    data = {}
    for label, params in (("core-bound (scalable)", scalable),
                          ("memory-bound (saturated)", saturated)):
        base = RunTiming.of(simulate_saturation(_config(**params)))
        delayed_res = simulate_saturation(_config(**params, delays=delay))
        delayed = RunTiming.of(delayed_res)
        excess = delayed.total_runtime() - base.total_runtime()

        # Execution-phase durations behind the wave: do ranks speed up?
        durations = delayed_res.exec_end - delayed_res.exec_start
        base_phase = float(np.median(durations[:, 0]))
        fastest_phase = float(durations[:, 1:].min())
        rows.append(
            (label, base.total_runtime() * 1e3, excess * 1e3,
             excess / DELAY * 100, base_phase * 1e3, fastest_phase * 1e3)
        )
        data[label] = {
            "excess": excess,
            "excess_fraction": excess / DELAY,
            "base_phase": base_phase,
            "fastest_phase": fastest_phase,
        }

    table = format_table(
        ["regime", "base runtime [ms]", "excess [ms]", "excess/delay [%]",
         "typical phase [ms]", "fastest phase [ms]"],
        rows,
    )

    cb = data["core-bound (scalable)"]
    mb = data["memory-bound (saturated)"]
    notes = [
        f"Core-bound: excess = {cb['excess_fraction'] * 100:.0f}% of the delay "
        "(nothing can be overlapped; Eq. 2 world).",
        f"Memory-bound: excess = {mb['excess_fraction'] * 100:.0f}% — ranks "
        "streaming while their neighbors idle get more bandwidth "
        f"(fastest phase {mb['fastest_phase'] * 1e3:.2f} ms vs typical "
        f"{mb['base_phase'] * 1e3:.2f} ms) and absorb part of the delay.",
        "This is the outlook's 'potential for desynchronization and better "
        "utilization of the memory bandwidth', realized without any noise.",
    ]
    return ExperimentResult(
        name="ext_membound",
        title="Extension: idle-wave impact in memory-bound vs core-bound code",
        tables={"regimes": table},
        data=data,
        notes=notes,
    )
