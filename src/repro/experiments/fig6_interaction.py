"""Fig. 6 — interaction of propagating idle waves.

100 MPI processes (ten ranks per socket on 10 sockets / 5 nodes),
bidirectional eager communication (16384 B) on a periodic chain.  A delay
is injected at the sixth process (local rank 5) of every socket:

- (a) **equal** delays — the waves meet midway between sockets and cancel
  after five hops;
- (b) **half** delays on odd sockets — partial cancellation; the longer
  waves keep going until they meet their symmetric counterparts;
- (c) **random** delays — the longest waves survive until the program ends.

The quantitative nonlinearity check (beyond the paper's qualitative
timelines): the total idle time of the combined run is far below the sum
of single-wave runs — linear superposition does not hold.
"""

from __future__ import annotations

import numpy as np

from repro.core import find_waves, resync_step, superposition_defect
from repro.experiments.base import ExperimentResult
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    delays_at_local_rank,
    simulate_lockstep,
)
from repro.sim.topology import single_switch_mapping
from repro.viz.ascii_timeline import render_idle_heatmap
from repro.viz.tables import format_table

__all__ = ["run", "make_config", "SCENARIOS"]

N_RANKS = 100
N_STEPS = 20
T_EXEC = 3e-3
MSG_SIZE = 16384
LOCAL_RANK = 5  # "sixth process on each socket"
BASE_DELAY = 5 * T_EXEC

SCENARIOS = ("equal", "half", "random")


def _durations(scenario: str, n_sockets: int, rng: np.random.Generator) -> np.ndarray:
    if scenario == "equal":
        return np.full(n_sockets, BASE_DELAY)
    if scenario == "half":
        out = np.full(n_sockets, BASE_DELAY)
        out[1::2] *= 0.5
        return out
    if scenario == "random":
        return rng.uniform(0.3 * BASE_DELAY, 1.5 * BASE_DELAY, size=n_sockets)
    raise ValueError(f"unknown scenario {scenario!r}; pick from {SCENARIOS}")


def make_config(scenario: str, seed: int = 0) -> LockstepConfig:
    """Build the Fig. 6 configuration for one injection scenario."""
    mapping = single_switch_mapping(N_RANKS, ppn=20)
    rng = np.random.default_rng(seed + 1000)
    durations = _durations(scenario, mapping.n_sockets_used(), rng)
    delays = delays_at_local_rank(mapping, LOCAL_RANK, durations, step=0)
    return LockstepConfig(
        n_ranks=N_RANKS,
        n_steps=N_STEPS,
        t_exec=T_EXEC,
        msg_size=MSG_SIZE,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
        delays=tuple(delays),
        seed=seed,
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the three Fig. 6 panels plus the nonlinearity metric."""
    rows = []
    tables: dict[str, str] = {}
    data: dict[str, dict] = {}

    for scenario in SCENARIOS:
        cfg = make_config(scenario, seed=seed)
        combined = simulate_lockstep(cfg)

        # Single-wave reference runs for the superposition check.
        singles = []
        for spec in cfg.delays:
            single_cfg = LockstepConfig(
                n_ranks=cfg.n_ranks, n_steps=cfg.n_steps, t_exec=cfg.t_exec,
                msg_size=cfg.msg_size, pattern=cfg.pattern,
                delays=(spec,), seed=cfg.seed,
            )
            singles.append(simulate_lockstep(single_cfg))
        defect = superposition_defect(combined, singles)
        total_single = sum(
            float(np.sum(s.idle_matrix())) for s in singles
        )

        waves = find_waves(combined)
        resync = resync_step(combined)
        rows.append(
            (
                scenario,
                len(cfg.delays),
                len(waves),
                resync if resync is not None else -1,
                defect * 1e3,
                (defect / total_single * 100) if total_single else 0.0,
            )
        )
        data[scenario] = {
            "config": cfg,
            "result": combined,
            "waves": len(waves),
            "resync_step": resync,
            "superposition_defect": defect,
        }
        if not fast:
            tables[f"{scenario} idle map"] = render_idle_heatmap(combined)

    summary = format_table(
        ["scenario", "injected delays", "detected waves", "resync step",
         "superposition defect [rank-ms]", "defect [% of linear sum]"],
        rows,
    )
    tables = {"summary": summary, **tables}

    notes = [
        "Equal delays cancel pairwise: the system resynchronizes within a few "
        "hops (paper: 'expected cancellation after five hops').",
        "Half delays: partial cancellation; the surviving halves run on "
        "until they meet their symmetric counterparts (later resync).",
        "Random delays: the longest waves survive to the end of the run "
        "(resync step = -1 means never within the horizon).",
        "Superposition defect << 0 in all scenarios: idle waves destroy idle "
        "time when they collide -> no linear wave equation can describe them.",
    ]
    return ExperimentResult(
        name="fig6",
        title="Interaction and cancellation of idle waves (equal/half/random)",
        tables=tables,
        data=data,
        notes=notes,
    )
