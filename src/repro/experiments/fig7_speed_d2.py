"""Fig. 7 — wave speed with next-to-next-neighbor communication (d = 2).

Rendezvous protocol, open boundaries, noise-free, neighbor distance 2:
(a) unidirectional vs. (b) bidirectional.  Bidirectional communication
doubles the propagation speed (σ = 2 in Eq. 2); with d = 2 the absolute
speeds are twice their d = 1 counterparts.
"""

from __future__ import annotations

from repro.core import silent_speed
from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.reports.kernels import batched_wave_front, fit_front_speed
from repro.reports.timing import BatchedTiming
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.topology import CommDomain
from repro.viz.ascii_timeline import render_idle_heatmap
from repro.viz.tables import format_table

__all__ = ["run", "run_d2", "measure_speed_d2"]

T_EXEC = 3e-3
MSG_SIZE = 31080 * 8  # rendezvous-sized, as in Fig. 5's bottom row
SOURCE = 8


def run_d2(direction: Direction, n_ranks: int = 18, n_steps: int = 20, seed: int = 0):
    """One Fig. 7 panel (d=2, rendezvous, open chain); returns the trace."""
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T_EXEC,
        msg_size=MSG_SIZE,
        pattern=CommPattern(direction=direction, distance=2, periodic=False),
        delays=(DelaySpec(rank=SOURCE, step=0, duration=4.5 * T_EXEC),),
        seed=seed,
    )
    return simulate(build_lockstep_program(cfg), SimConfig(network=UniformNetwork()))


def measure_speed_d2(trace) -> float:
    """Forward wave speed of one Fig. 7 panel via the shared report kernel.

    The batched front walk + Eq. 2 fit in :mod:`repro.reports.kernels` is
    the *same* code the ``fig7_speed`` report spec runs over the scenario
    sweep, so the experiment and report paths cannot drift apart (the
    parity test pins them to 1e-9).
    """
    batch = BatchedTiming.from_timings([RunTiming.of(trace)])
    front = batched_wave_front(batch, SOURCE, direction=+1, periodic=False)
    speed = float(fit_front_speed(front)[0])
    if not speed > 0:
        raise ValueError(f"no measurable idle wave from rank {SOURCE}")
    return speed


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 7 speed comparison."""
    net = UniformNetwork()
    t_comm = net.total_pingpong_time(MSG_SIZE, CommDomain.INTER_NODE)

    rows = []
    data = {}
    for label, direction in (("(a) unidirectional", Direction.UNIDIRECTIONAL),
                             ("(b) bidirectional", Direction.BIDIRECTIONAL)):
        trace = run_d2(direction, seed=seed)
        speed = measure_speed_d2(trace)
        bidi = direction == Direction.BIDIRECTIONAL
        model = silent_speed(T_EXEC, t_comm, d=2, bidirectional=bidi, rendezvous=True)
        rows.append((label, speed, model, abs(speed - model) / model * 100))
        data[label] = {"trace": trace, "speed": speed, "model": model}

    ratio = data["(b) bidirectional"]["speed"] / data["(a) unidirectional"]["speed"]
    table = format_table(
        ["panel", "measured [ranks/s]", "Eq.2 [ranks/s]", "error [%]"], rows
    )
    tables = {"speeds": table}
    if not fast:
        for label in data:
            tables[f"{label} idle map"] = render_idle_heatmap(data[label]["trace"])

    notes = [
        f"Speed ratio bidirectional/unidirectional = {ratio:.2f} (paper: 2).",
        "Both absolute speeds are twice the d=1 rendezvous speeds "
        "(d enters Eq. 2 linearly).",
    ]
    return ExperimentResult(
        name="fig7",
        title="Wave speed at neighbor distance d=2 (rendezvous): uni vs. bi",
        tables=tables,
        data={**data, "ratio": ratio},
        notes=notes,
    )
