"""Extension experiment: sustained random delay campaigns.

Generalizes Fig. 6(c) ("random delay injected at sixth process of each
socket") to a Poisson climate of delays over the whole run, and measures
the marginal runtime cost per injected delay-second as a function of the
injection rate.

Expected shape: interacting waves cancel (Sec. IV-B), so the runtime cost
of the campaign grows *sublinearly* with the injected delay budget — each
additional delay is partly absorbed by the wave field of the others.  The
cost ratio (runtime excess / injected delay-seconds) therefore falls as
the rate rises, dropping well below the single-delay reference of 1.

The rate scan is a campaign of independent ``rate x replicate`` runs,
declared as a :class:`~repro.runtime.spec.SweepSpec` and executed through
the parallel campaign runtime (:mod:`repro.runtime`): per-run seeds are
derived deterministically from the experiment's base seed, runs shard
across worker processes (CLI ``--jobs``), and results land in the
content-addressed store (CLI ``--cache-dir``) so repeated invocations
skip already-simulated runs.  Serial and sharded executions are
bit-identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, RuntimeOptions
from repro.runtime import SweepSpec, group_by_param, run_campaign
from repro.runtime.tasks import ring_runtime
from repro.sim.campaign import DelayCampaign
from repro.viz.tables import format_table

__all__ = ["run", "campaign_cost_task"]

T_EXEC = 3e-3
N_RANKS = 50
N_STEPS = 40
MSG_SIZE = 8192
DUR_LO, DUR_HI = 2 * T_EXEC, 8 * T_EXEC


def campaign_cost_task(
    rate: float,
    replicate: int,
    n_ranks: int,
    n_steps: int,
    t_exec: float,
    msg_size: int,
    duration_low: float,
    duration_high: float,
    baseline: float,
    sim_seed: int,
    seed: int = 0,
) -> dict:
    """One campaign run: draw a delay schedule, simulate, account the cost.

    ``seed`` is the task's derived per-run seed (disjoint stream per
    ``(rate, replicate)`` grid point); ``sim_seed`` is the experiment's
    base seed threaded into the engine config, and ``baseline`` the
    delay-free runtime it implies.
    """
    campaign = DelayCampaign(rate=rate, duration_low=duration_low,
                             duration_high=duration_high)
    delays = campaign.draw(n_ranks, n_steps, seed)
    injected = float(sum(d.duration for d in delays))
    if injected <= 0.0:
        return {"n_delays": 0, "injected": 0.0, "excess": 0.0,
                "replicate": int(replicate)}
    excess = ring_runtime(n_ranks, n_steps, t_exec, msg_size, delays,
                          sim_seed) - baseline
    return {
        "n_delays": len(delays),
        "injected": injected,
        "excess": float(excess),
        "replicate": int(replicate),
    }


def run(fast: bool = True, seed: int = 0,
        runtime: "RuntimeOptions | None" = None) -> ExperimentResult:
    """Scan the injection rate and report the marginal delay cost."""
    opts = runtime or RuntimeOptions()
    rates = (0.001, 0.01, 0.03, 0.08) if fast else (0.001, 0.002, 0.005, 0.01,
                                                    0.02, 0.04, 0.08, 0.15)
    n_runs = 4 if fast else 10
    baseline = ring_runtime(N_RANKS, N_STEPS, T_EXEC, MSG_SIZE, (), seed)

    sweep = SweepSpec(
        fn="repro.experiments.ext_campaign:campaign_cost_task",
        base={
            "n_ranks": N_RANKS, "n_steps": N_STEPS, "t_exec": T_EXEC,
            "msg_size": MSG_SIZE, "duration_low": DUR_LO,
            "duration_high": DUR_HI, "baseline": baseline, "sim_seed": seed,
        },
        axes=(("rate", rates), ("replicate", tuple(range(n_runs)))),
        base_seed=seed,
    )
    campaign = run_campaign(
        sweep.tasks(), jobs=opts.jobs, store=opts.store()
    ).raise_failures()

    rows = []
    data = {}
    for rate, values in group_by_param(campaign, "rate").items():
        hits = [v for v in values if v["injected"] > 0]
        if not hits:
            continue
        ratios = [v["excess"] / v["injected"] for v in hits]
        counts = [v["n_delays"] for v in hits]
        model = DelayCampaign(rate=rate, duration_low=DUR_LO, duration_high=DUR_HI)
        rows.append(
            (
                rate,
                float(np.mean(counts)),
                model.expected_injected_time(N_RANKS, N_STEPS) * 1e3,
                float(np.median(ratios)),
            )
        )
        data[rate] = {"cost_ratio": float(np.median(ratios)),
                      "mean_delays": float(np.mean(counts))}

    table = format_table(
        ["rate [delays/rank/step]", "mean #delays", "E[injected] [ms]",
         "excess / injected (marginal cost)"],
        rows,
    )

    ratios_by_rate = [data[r]["cost_ratio"] for r in sorted(data)]
    notes = [
        "A single delay on a quiet ring costs its full duration "
        "(cost ratio 1, cf. Fig. 9 at E=0).",
        "Under a sustained campaign the waves cancel pairwise, so the "
        "marginal cost falls with the rate: "
        f"{' -> '.join(f'{x:.2f}' for x in ratios_by_rate)}.",
        "This is the system-level consequence of the nonlinearity of "
        "Sec. IV-B: delay climates are cheaper than the sum of their delays.",
        f"Campaign: {len(campaign)} runs, {campaign.n_cached} from cache, "
        f"{campaign.n_executed} simulated on {campaign.jobs} worker(s).",
    ]
    return ExperimentResult(
        name="ext_campaign",
        title="Extension: marginal cost of sustained random delay campaigns",
        tables={"rate scan": table},
        data=data,
        notes=notes,
    )
