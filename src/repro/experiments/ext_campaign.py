"""Extension experiment: sustained random delay campaigns.

Generalizes Fig. 6(c) ("random delay injected at sixth process of each
socket") to a Poisson climate of delays over the whole run, and measures
the marginal runtime cost per injected delay-second as a function of the
injection rate.

Expected shape: interacting waves cancel (Sec. IV-B), so the runtime cost
of the campaign grows *sublinearly* with the injected delay budget — each
additional delay is partly absorbed by the wave field of the others.  The
cost ratio (runtime excess / injected delay-seconds) therefore falls as
the rate rises, dropping well below the single-delay reference of 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.sim import CommPattern, Direction, LockstepConfig, simulate_lockstep
from repro.sim.campaign import DelayCampaign
from repro.viz.tables import format_table

__all__ = ["run"]

T_EXEC = 3e-3
N_RANKS = 50
N_STEPS = 40
DUR_LO, DUR_HI = 2 * T_EXEC, 8 * T_EXEC


def _runtime(delays, seed):
    cfg = LockstepConfig(
        n_ranks=N_RANKS, n_steps=N_STEPS, t_exec=T_EXEC, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=tuple(delays),
        seed=seed,
    )
    return RunTiming.of(simulate_lockstep(cfg)).total_runtime()


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Scan the injection rate and report the marginal delay cost."""
    rates = (0.002, 0.01, 0.03, 0.08) if fast else (0.001, 0.002, 0.005, 0.01,
                                                    0.02, 0.04, 0.08, 0.15)
    n_runs = 4 if fast else 10
    baseline = _runtime((), seed)

    rows = []
    data = {}
    for rate in rates:
        campaign = DelayCampaign(rate=rate, duration_low=DUR_LO, duration_high=DUR_HI)
        ratios, counts = [], []
        for r in range(n_runs):
            rng = np.random.default_rng(seed + 1000 * r + 7)
            delays = campaign.draw(N_RANKS, N_STEPS, rng)
            if not delays:
                continue
            injected = sum(d.duration for d in delays)
            excess = _runtime(delays, seed) - baseline
            ratios.append(excess / injected)
            counts.append(len(delays))
        if not ratios:
            continue
        rows.append(
            (
                rate,
                float(np.mean(counts)),
                campaign.expected_injected_time(N_RANKS, N_STEPS) * 1e3,
                float(np.median(ratios)),
            )
        )
        data[rate] = {"cost_ratio": float(np.median(ratios)),
                      "mean_delays": float(np.mean(counts))}

    table = format_table(
        ["rate [delays/rank/step]", "mean #delays", "E[injected] [ms]",
         "excess / injected (marginal cost)"],
        rows,
    )

    ratios_by_rate = [data[r]["cost_ratio"] for r in sorted(data)]
    notes = [
        "A single delay on a quiet ring costs its full duration "
        "(cost ratio 1, cf. Fig. 9 at E=0).",
        "Under a sustained campaign the waves cancel pairwise, so the "
        "marginal cost falls with the rate: "
        f"{' -> '.join(f'{x:.2f}' for x in ratios_by_rate)}.",
        "This is the system-level consequence of the nonlinearity of "
        "Sec. IV-B: delay climates are cheaper than the sum of their delays.",
    ]
    return ExperimentResult(
        name="ext_campaign",
        title="Extension: marginal cost of sustained random delay campaigns",
        tables={"rate scan": table},
        data=data,
        notes=notes,
    )
