"""Fig. 9 — elimination of an idle period by noise.

Six processes per socket on six sockets (36 ranks, three nodes); an idle
wave with a length of four execution periods (6 ms, so T_exec = 1.5 ms) is
injected at time step 1 on rank 1; 30 time steps.  Exponential noise of
mean relative level E ∈ {0 %, 20 %, 25 %} is injected into every phase.

Paper's measured totals: 51.1 ms (E=0), 82.7 ms (E=20 %), 84.6 ms (E=25 %).
At E = 0 the excess runtime equals the injected delay; at E = 25 % the
excess vanishes — the noise has absorbed the wave.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import elimination_scan, runtime_spread
from repro.experiments.base import ExperimentResult
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    simulate_lockstep,
)
from repro.sim.noise import exponential_for_level
from repro.viz.ascii_timeline import render_idle_heatmap
from repro.viz.tables import format_table

__all__ = ["run", "make_base_config", "T_EXEC", "DELAY"]

T_EXEC = 1.5e-3
DELAY = 4 * T_EXEC  # "an idle wave with a length of four execution periods (6 ms)"
N_RANKS = 36  # six processes per socket on six sockets
N_STEPS = 30
SOURCE = 1

#: Paper's measured total runtimes for the three noise levels (seconds).
PAPER_TOTALS = {0.0: 51.1e-3, 0.20: 82.7e-3, 0.25: 84.6e-3}


def make_base_config(seed: int = 0) -> LockstepConfig:
    """The Fig. 9 configuration (delay included, noise set per scan point)."""
    return LockstepConfig(
        n_ranks=N_RANKS,
        n_steps=N_STEPS,
        t_exec=T_EXEC,
        msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
        delays=(DelaySpec(rank=SOURCE, step=0, duration=DELAY),),
        seed=seed,
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 9 elimination data."""
    levels = (0.0, 0.20, 0.25)
    base = make_base_config(seed=seed)
    points = elimination_scan(base, levels)
    n_spread_runs = 6 if fast else 12

    rows = []
    observable = {}
    for pt in points:
        paper = PAPER_TOTALS.get(pt.E)
        spread = (
            runtime_spread(base, pt.E, n_runs=n_spread_runs, seed0=seed + 100)
            if pt.E > 0
            else 0.0
        )
        # The paper judges elimination from single runs: an excess below the
        # run-to-run spread is unobservable.
        observable[pt.E] = pt.excess > 2 * spread
        rows.append(
            (
                pt.E * 100,
                pt.runtime_with_delay * 1e3,
                pt.runtime_without_delay * 1e3,
                pt.excess * 1e3,
                pt.excess_fraction(DELAY) * 100,
                spread * 1e3,
                "yes" if observable[pt.E] else "no",
                paper * 1e3 if paper is not None else float("nan"),
            )
        )
    table = format_table(
        ["E [%]", "t_total [ms]", "t_no-delay [ms]", "excess [ms]",
         "excess/delay [%]", "run-to-run σ [ms]", "observable?",
         "paper t_total [ms]"],
        rows,
    )

    tables = {"elimination scan": table}
    if not fast:
        for pt, label in zip(points, ("E=0%", "E=20%", "E=25%")):
            noise = exponential_for_level(pt.E, T_EXEC) if pt.E > 0 else base.noise
            cfg = replace(base, noise=noise)
            tables[f"idle map {label}"] = render_idle_heatmap(simulate_lockstep(cfg))

    e0, e25 = points[0], points[-1]
    notes = [
        f"E=0: excess runtime {e0.excess * 1e3:.2f} ms ~= injected delay "
        f"{DELAY * 1e3:.1f} ms (paper: roughly equal to the injected delay).",
        f"E=25%: seed-matched excess {e25.excess * 1e3:.2f} ms "
        f"({e25.excess_fraction(DELAY) * 100:.0f}% of the delay); "
        f"observable above run-to-run variation: {observable[0.25]}.",
        "The paper judges from single runs, where an excess below the "
        "run-to-run spread reads as 'no excess runtime'; our seed-matched "
        "twin-run metric still resolves the residual.",
        "Total runtime grows with E (noise is not free); only the *delay's* "
        "contribution fades.",
        f"Paper totals for reference: {', '.join(f'{k * 100:.0f}%: {v * 1e3:.1f} ms' for k, v in PAPER_TOTALS.items())}.",
    ]
    return ExperimentResult(
        name="fig9",
        title="Idle-period elimination by exponential noise (E = 0/20/25 %)",
        tables=tables,
        data={"points": points, "delay": DELAY, "paper_totals": PAPER_TOTALS,
              "observable": observable},
        notes=notes,
    )
