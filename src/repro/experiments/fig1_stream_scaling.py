"""Fig. 1 — STREAM triad strong scaling: model vs. (simulated) measurement.

Reproduces the three panels of the paper's motivating experiment:

- (a) total and execution-only performance on 1–9 full sockets (PPN=20)
  against the Eq. 1 nonoverlapping model and the execution-only model,
- (b) the node-level closeup (1–20 processes on one node),
- (c) one process per node on 1–16 nodes.

Expected shape (not absolute numbers): with full sockets the *measured*
execution performance exceeds the naive linear-scaling execution model
because system noise desynchronizes the ranks, which automatically
overlaps communication with computation and relieves the shared memory
bandwidth; with PPN=1 the model is accurate (no saturation to exploit).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.statistics import RunStatistics
from repro.cluster import EMMY
from repro.experiments.base import ExperimentResult
from repro.models.hockney import triad_strong_scaling_model
from repro.sim.saturation import simulate_saturation
from repro.viz.tables import format_table
from repro.workloads.stream import TriadWorkload, triad_saturation_config

__all__ = ["run", "simulate_triad_point"]


def simulate_triad_point(
    n_sockets: int,
    ppn: int,
    n_steps: int,
    seed: int,
    workload: TriadWorkload | None = None,
    n_ranks: int | None = None,
):
    """One strong-scaling point: returns (total perf, exec-only perf) in flop/s."""
    if workload is None:
        workload = TriadWorkload()
    machine = EMMY.with_nodes(max(16, n_sockets))
    cfg = triad_saturation_config(
        machine, n_sockets=n_sockets, ppn=ppn, n_steps=n_steps,
        workload=workload, n_ranks=n_ranks, seed=seed,
    )
    res = simulate_saturation(cfg)
    # Discard a warm-up third: desynchronization needs time to develop.
    warm = max(1, n_steps // 3)
    t_iter = (res.completion[:, -1].max() - res.completion[:, warm - 1].max()) / (
        n_steps - warm
    )
    exec_time = (res.exec_end - res.exec_start)[:, warm:].mean()
    p_total = workload.performance(t_iter)
    p_exec = workload.performance(exec_time)
    return p_total, p_exec


def _model_performance(n_sockets: int, workload: TriadWorkload, b_mem: float, b_net: float):
    """Eq. 1 total model and execution-only model, in flop/s."""
    t_total = triad_strong_scaling_model(
        n_sockets, v_mem=workload.v_mem, v_net=workload.v_net, b_mem=b_mem, b_net=b_net
    )
    t_exec = workload.v_mem / (n_sockets * b_mem)
    return workload.performance(t_total), workload.performance(t_exec)


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 1 data tables."""
    workload = TriadWorkload()
    b_mem, b_net = EMMY.b_socket, 3e9
    # The desynchronization instability that produces the paper's
    # better-than-model execution performance needs a few hundred
    # iterations to develop (compare Fig. 2, where the pattern emerges
    # between steps 20 and 60 at ~20 ms per step).
    n_steps = 400 if fast else 1000
    n_runs = 2 if fast else 5

    # ---- (a) full sockets, PPN = 20 ------------------------------------
    sockets = list(range(1, 10))
    rows_a = []
    data_a = []
    for n in sockets:
        totals, execs = [], []
        for r in range(n_runs):
            pt, pe = simulate_triad_point(n, ppn=20, n_steps=n_steps, seed=seed + r)
            totals.append(pt)
            execs.append(pe)
        st, se = RunStatistics.from_samples(totals), RunStatistics.from_samples(execs)
        m_total, m_exec = _model_performance(n, workload, b_mem, b_net)
        rows_a.append(
            (n, st.median / 1e9, se.median / 1e9, se.minimum / 1e9, se.maximum / 1e9,
             m_total / 1e9, m_exec / 1e9)
        )
        data_a.append(
            {"sockets": n, "p_total": st.median, "p_exec": se.median,
             "p_exec_min": se.minimum, "p_exec_max": se.maximum,
             "model_total": m_total, "model_exec": m_exec}
        )
    table_a = format_table(
        ["sockets", "meas total [GF/s]", "meas exec [GF/s]", "exec min", "exec max",
         "model total [GF/s]", "model exec [GF/s]"],
        rows_a,
    )

    # ---- (b) node-level closeup: 2..20 processes on one node -----------
    rows_b = []
    data_b = []
    for p in (2, 4, 6, 8, 10, 14, 20):
        sockets_used = 1 if p <= 10 else 2
        pt, _ = simulate_triad_point(
            n_sockets=sockets_used, ppn=p, n_ranks=p,
            n_steps=n_steps, seed=seed,
        )
        m_total, _ = _model_performance(sockets_used, workload, b_mem, b_net)
        rows_b.append((p, pt / 1e9, m_total / 1e9))
        data_b.append({"processes": p, "p_total": pt, "model_total": m_total})
    table_b = format_table(
        ["processes", "meas total [GF/s]", "model total [GF/s]"], rows_b
    )

    # ---- (c) one process per node, 2..16 nodes --------------------------
    rows_c = []
    data_c = []
    node_counts = [2, 4, 8, 12, 16] if fast else [2, 4, 6, 8, 10, 12, 14, 16]
    for nn in node_counts:
        pt, _ = simulate_triad_point(n_sockets=nn, ppn=1, n_steps=n_steps, seed=seed)
        # PPN=1: one rank per node, socket bandwidth not saturated — the
        # model uses the single-core bandwidth.
        t_model = workload.v_mem / (nn * EMMY.b_core) + 2 * workload.v_net / b_net
        m_total = workload.performance(t_model)
        rows_c.append((nn, pt / 1e9, m_total / 1e9))
        data_c.append({"nodes": nn, "p_total": pt, "model_total": m_total})
    table_c = format_table(["nodes (PPN=1)", "meas total [GF/s]", "model total [GF/s]"], rows_c)

    # Headline observation of the paper:
    overlap_gain = [d["p_exec"] / d["model_exec"] for d in data_a if d["sockets"] >= 4]
    ppn1_err = [abs(d["p_total"] - d["model_total"]) / d["model_total"] for d in data_c]

    notes = [
        "Paper: measured execution performance is 'so much higher than the "
        "prediction' at multi-socket scale due to noise-induced desync/overlap.",
        f"Reproduced: exec/model ratio at >=4 sockets: "
        f"{min(overlap_gain):.2f}..{max(overlap_gain):.2f} (>1 means overlap gain).",
        "Paper: with PPN=1 'the model actually delivers a good prediction'.",
        f"Reproduced: PPN=1 relative model error {max(ppn1_err) * 100:.1f}% max.",
    ]
    return ExperimentResult(
        name="fig1",
        title="MPI STREAM triad strong scaling: model vs. simulated measurement",
        tables={
            "(a) sockets scan, PPN=20": table_a,
            "(b) node-level closeup": table_b,
            "(c) one process per node": table_c,
        },
        data={"a": data_a, "b": data_b, "c": data_c},
        notes=notes,
    )
