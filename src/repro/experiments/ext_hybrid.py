"""Extension experiment: pure MPI vs. hybrid MPI/OpenMP skew potential.

Implements the comparison the paper's outlook proposes: hybrid codes
synchronize threads at the end of every parallel region, which reduces the
number of independently-skewing endpoints but raises the per-phase noise
(the max over the group's threads).  We scan thread-group sizes at a fixed
core count and measure:

- the per-phase effective noise (group max),
- the desynchronization developed over a noisy run (spread of completion
  times),
- the decay rate of an injected idle wave (fewer, noisier endpoints damp
  waves faster per *rank*, but the wave also has fewer ranks to cross).
"""

from __future__ import annotations

import numpy as np

from repro.core import measure_decay
from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.sim import CommPattern, DelaySpec, Direction, ExponentialNoise, simulate_lockstep
from repro.sim.hybrid import HybridConfig, hybrid_exec_times, hybrid_lockstep_config
from repro.viz.tables import format_table

__all__ = ["run"]

TOTAL_CORES = 64
T_EXEC = 3e-3
E = 0.05  # per-thread noise level
N_STEPS = 60
DELAY = 30e-3


def _run_group_size(threads: int, seed: int):
    n_proc = TOTAL_CORES // threads
    cfg = HybridConfig(
        n_processes=n_proc,
        threads=threads,
        n_steps=N_STEPS,
        t_exec=T_EXEC,
        msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
        noise=ExponentialNoise(E * T_EXEC),
        delays=(DelaySpec(rank=0, step=0, duration=DELAY),),
        seed=seed,
    )
    times = hybrid_exec_times(cfg)
    res = simulate_lockstep(hybrid_lockstep_config(cfg), exec_times=times)
    timing = RunTiming.of(res)
    effective_noise = float(times.mean() - T_EXEC)
    skew = float(np.ptp(timing.completion[:, -1]))
    decay = measure_decay(res, source=0, periodic=True)
    return effective_noise, skew, decay


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Scan OpenMP group sizes at a fixed 64-core budget."""
    group_sizes = (1, 2, 4, 8, 16) if fast else (1, 2, 4, 8, 16, 32)
    rows = []
    data = {}
    for threads in group_sizes:
        noises, skews, betas, hops = [], [], [], []
        n_runs = 4 if fast else 10
        for r in range(n_runs):
            eff, skew, decay = _run_group_size(threads, seed + r)
            noises.append(eff)
            skews.append(skew)
            betas.append(decay.beta)
            hops.append(decay.survival_hops)
        rows.append(
            (
                threads,
                TOTAL_CORES // threads,
                float(np.median(noises)) * 1e6,
                float(np.median(skews)) * 1e6,
                float(np.median(betas)) * 1e6,
                float(np.median(hops)),
            )
        )
        data[threads] = {
            "effective_noise": float(np.median(noises)),
            "skew": float(np.median(skews)),
            "beta": float(np.median(betas)),
            "survival_hops": float(np.median(hops)),
        }

    table = format_table(
        ["threads/process", "MPI ranks", "eff. noise/phase [µs]",
         "final skew [µs]", "decay rate β̄ [µs/rank]", "wave survival [ranks]"],
        rows,
    )

    noise_up = data[group_sizes[-1]]["effective_noise"] > data[1]["effective_noise"]
    notes = [
        "Thread barriers raise the effective per-phase noise (max over the "
        f"group): monotone increase reproduced = {noise_up}.",
        "Fewer, noisier endpoints: the per-rank decay rate of an injected "
        "wave grows with the group size — hybrid runs damp idle waves "
        "faster per hop, at the price of more noise-induced runtime.",
        "This quantifies the outlook's claim that hybrid MPI/OpenMP 'tends "
        "to enforce frequent thread synchronization, lessening the "
        "potential for inter-process skew'.",
    ]
    return ExperimentResult(
        name="ext_hybrid",
        title="Extension: pure MPI vs. hybrid MPI/OpenMP skew and damping",
        tables={"group-size scan": table},
        data=data,
        notes=notes,
    )
