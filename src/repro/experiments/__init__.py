"""Experiment drivers — one per paper figure plus the Eq. 2 sweep.

Each module exposes ``run(fast=True, seed=0) -> ExperimentResult``.  The
registry maps experiment ids to those entry points; the CLI and the
benchmark harness both resolve through it.
"""

import inspect
from typing import Callable

from repro.experiments import (
    eq2_speed_model,
    ext_campaign,
    ext_collectives,
    ext_hybrid,
    ext_membound,
    fig1_stream_scaling,
    fig2_lbm_timeline,
    fig3_noise_histograms,
    fig4_basic_propagation,
    fig5_flavors,
    fig6_interaction,
    fig7_speed_d2,
    fig8_decay_rate,
    fig9_elimination,
)
from repro.experiments.base import ExperimentResult, RuntimeOptions

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "RuntimeOptions",
    "experiment_descriptions",
    "run_experiment",
]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_stream_scaling.run,
    "fig2": fig2_lbm_timeline.run,
    "fig3": fig3_noise_histograms.run,
    "fig4": fig4_basic_propagation.run,
    "fig5": fig5_flavors.run,
    "fig6": fig6_interaction.run,
    "fig7": fig7_speed_d2.run,
    "eq2": eq2_speed_model.run,
    "fig8": fig8_decay_rate.run,
    "fig9": fig9_elimination.run,
    # Extensions: the paper's Sec. VII future-work directions.
    "ext_campaign": ext_campaign.run,
    "ext_collectives": ext_collectives.run,
    "ext_hybrid": ext_hybrid.run,
    "ext_membound": ext_membound.run,
}


def experiment_descriptions() -> "dict[str, str]":
    """One-line description per experiment id (driver-module docstrings).

    Feeds ``repro-experiment list``; insertion order follows the registry.
    """
    out: dict[str, str] = {}
    for name, driver in EXPERIMENTS.items():
        doc = inspect.getdoc(inspect.getmodule(driver)) or ""
        out[name] = doc.splitlines()[0].strip() if doc else ""
    return out


def run_experiment(
    name: str,
    fast: bool = True,
    seed: int = 0,
    runtime: "RuntimeOptions | None" = None,
) -> ExperimentResult:
    """Run one experiment by id ("fig1" .. "fig9", "eq2").

    ``runtime`` (parallelism and result caching, see
    :class:`~repro.experiments.base.RuntimeOptions`) is forwarded to
    campaign-style drivers that declare a ``runtime`` parameter; drivers
    without campaign structure simply ignore it.
    """
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    driver = EXPERIMENTS[key]
    kwargs = {}
    if runtime is not None and "runtime" in inspect.signature(driver).parameters:
        kwargs["runtime"] = runtime
    return driver(fast=fast, seed=seed, **kwargs)
