"""Experiment drivers — one per paper figure plus the Eq. 2 sweep.

Each module exposes ``run(fast=True, seed=0) -> ExperimentResult``.  The
registry maps experiment ids to those entry points; the CLI and the
benchmark harness both resolve through it.
"""

from typing import Callable

from repro.experiments import (
    eq2_speed_model,
    ext_campaign,
    ext_collectives,
    ext_hybrid,
    ext_membound,
    fig1_stream_scaling,
    fig2_lbm_timeline,
    fig3_noise_histograms,
    fig4_basic_propagation,
    fig5_flavors,
    fig6_interaction,
    fig7_speed_d2,
    fig8_decay_rate,
    fig9_elimination,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_stream_scaling.run,
    "fig2": fig2_lbm_timeline.run,
    "fig3": fig3_noise_histograms.run,
    "fig4": fig4_basic_propagation.run,
    "fig5": fig5_flavors.run,
    "fig6": fig6_interaction.run,
    "fig7": fig7_speed_d2.run,
    "eq2": eq2_speed_model.run,
    "fig8": fig8_decay_rate.run,
    "fig9": fig9_elimination.run,
    # Extensions: the paper's Sec. VII future-work directions.
    "ext_campaign": ext_campaign.run,
    "ext_collectives": ext_collectives.run,
    "ext_hybrid": ext_hybrid.run,
    "ext_membound": ext_membound.run,
}


def run_experiment(name: str, fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id ("fig1" .. "fig9", "eq2")."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](fast=fast, seed=seed)
