"""Fig. 3 — natural system-noise histograms of the two clusters.

The paper measures the execution-time deviation of an exactly-known
compute-bound phase (3 ms of back-to-back ``vdivpd``) over 3.3·10⁵ samples,
with SMT on and off, on both systems:

- SMT **on**: both systems unimodal; mean delays 2.4 µs (Emmy/InfiniBand)
  and 2.8 µs (Meggie/Omni-Path), maxima < 30 µs; 640 ns bins.
- SMT **off**: Meggie becomes *bimodal* with a distinctive second peak at
  ≈ 660 µs (Omni-Path driver); 7.2 µs bins.

We regenerate the histograms from the calibrated noise models of the
machine presets.
"""

from __future__ import annotations

from repro.analysis.histogram import NoiseHistogram, collect_noise_samples
from repro.cluster import EMMY, MEGGIE
from repro.experiments.base import ExperimentResult
from repro.viz.tables import format_table

__all__ = ["run"]

#: Paper sample count and bin widths.
N_SAMPLES_FULL = 330_000
BIN_SMT_ON = 640e-9
BIN_SMT_OFF = 7.2e-6


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the four Fig. 3 histograms and their summary statistics."""
    n_samples = 60_000 if fast else N_SAMPLES_FULL

    configs = [
        ("Emmy (InfiniBand)", "SMT on", EMMY.noise_smt_on, BIN_SMT_ON),
        ("Meggie (Omni-Path)", "SMT on", MEGGIE.noise_smt_on, BIN_SMT_ON),
        ("Emmy (InfiniBand)", "SMT off", EMMY.noise_smt_off, BIN_SMT_OFF),
        ("Meggie (Omni-Path)", "SMT off", MEGGIE.noise_smt_off, BIN_SMT_OFF),
    ]

    rows = []
    hists: dict[str, NoiseHistogram] = {}
    for i, (system, smt, noise, bin_width) in enumerate(configs):
        samples = collect_noise_samples(noise, n_samples, seed=seed + i)
        hist = NoiseHistogram.from_samples(samples, bin_width)
        modes = hist.modes(min_separation=100e-6)
        key = f"{system} / {smt}"
        hists[key] = hist
        rows.append(
            (
                system,
                smt,
                hist.mean * 1e6,
                hist.maximum * 1e6,
                len(modes),
                modes[1] * 1e6 if len(modes) > 1 else float("nan"),
            )
        )

    table = format_table(
        ["system", "SMT", "mean delay [µs]", "max delay [µs]", "#modes",
         "2nd mode [µs]"],
        rows,
    )

    tables = {"summary": table}
    if not fast:
        from repro.viz.ascii_histogram import render_histogram

        for key, hist in hists.items():
            tables[f"histogram: {key}"] = render_histogram(hist, max_rows=16)

    meggie_off = hists["Meggie (Omni-Path) / SMT off"]
    notes = [
        "Paper: SMT-on means 2.4 µs (Emmy) and 2.8 µs (Meggie), maxima < 30 µs.",
        f"Reproduced SMT-on means: {hists['Emmy (InfiniBand) / SMT on'].mean * 1e6:.1f} µs, "
        f"{hists['Meggie (Omni-Path) / SMT on'].mean * 1e6:.1f} µs.",
        "Paper: Meggie SMT-off is bimodal with a second peak at ~660 µs "
        "(Omni-Path driver).",
        f"Reproduced: bimodal={meggie_off.is_bimodal(min_separation=100e-6)}, "
        f"second mode at "
        f"{meggie_off.modes(min_separation=100e-6)[1] * 1e6:.0f} µs."
        if meggie_off.is_bimodal(min_separation=100e-6)
        else "Reproduced: bimodality NOT detected (check calibration).",
    ]
    return ExperimentResult(
        name="fig3",
        title="Natural system-noise histograms (both systems, SMT on/off)",
        tables=tables,
        data={"histograms": hists, "n_samples": n_samples},
        notes=notes,
    )
