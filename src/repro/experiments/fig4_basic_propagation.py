"""Fig. 4 — the delay-propagation mechanism in the simplest setting.

Eager-mode, unidirectional next-neighbor communication, one process per
node, no noise.  A delay of 4.5 execution phases is injected at rank 5 in
the first time step; the resulting idle wave ripples up the chain at one
rank per execution-plus-communication phase, while ranks below 5 are
unaffected (the eager protocol lets them "get rid of their messages").
"""

from __future__ import annotations

import numpy as np

from repro.core import default_threshold, measure_speed, silent_speed, wave_front
from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.topology import CommDomain
from repro.viz.ascii_timeline import render_timeline
from repro.viz.tables import format_table

__all__ = ["run", "DELAY_PHASES", "SOURCE_RANK"]

DELAY_PHASES = 4.5
SOURCE_RANK = 5


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 4 timeline and its quantitative checks."""
    t_exec = 3e-3
    n_ranks = 9 if fast else 18
    n_steps = 12 if fast else 20
    net = UniformNetwork()

    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=t_exec,
        msg_size=8192,  # paper's standard message size (eager)
        pattern=CommPattern(direction=Direction.UNIDIRECTIONAL, distance=1, periodic=False),
        delays=(DelaySpec(rank=SOURCE_RANK, step=0, duration=DELAY_PHASES * t_exec),),
        seed=seed,
    )
    trace = simulate(build_lockstep_program(cfg), SimConfig(network=net))
    timing = RunTiming.of(trace)

    threshold = default_threshold(timing)
    front = wave_front(trace, source=SOURCE_RANK, direction=+1, threshold=threshold)
    down = wave_front(trace, source=SOURCE_RANK, direction=-1, threshold=threshold)
    speed = measure_speed(trace, source=SOURCE_RANK, threshold=threshold)

    t_comm = net.total_pingpong_time(cfg.msg_size, CommDomain.INTER_NODE)
    v_model = silent_speed(t_exec, t_comm)

    rows = [
        (int(h), int(r), t * 1e3, a * 1e3)
        for h, r, t, a in zip(
            front.hops, front.ranks, front.arrival_times, front.amplitudes
        )
    ]
    arrivals = format_table(
        ["hop", "rank", "arrival [ms]", "idle duration [ms]"], rows
    )

    notes = [
        f"Measured wave speed {speed.speed:.1f} ranks/s vs Eq. 2 "
        f"{v_model:.1f} ranks/s (error {abs(speed.speed - v_model) / v_model * 100:.2f}%).",
        f"Ranks below the injection are unaffected (eager): downward reach = "
        f"{down.reach} ranks.",
        f"Idle duration stays ~= the injected delay "
        f"({DELAY_PHASES * t_exec * 1e3:.1f} ms) at every hop: "
        f"{front.amplitudes.min() * 1e3:.2f}..{front.amplitudes.max() * 1e3:.2f} ms "
        "(no decay without noise).",
        f"Communication accounts for {t_comm / (t_comm + t_exec) * 100:.2f}% of a "
        "phase (paper: ~0.2%).",
    ]
    return ExperimentResult(
        name="fig4",
        title="Basic idle-wave propagation (eager, unidirectional, noise-free)",
        tables={
            "timeline (rank/time; D=delay, #=idle)": render_timeline(trace, width=96),
            "wave-front arrivals": arrivals,
        },
        data={
            "speed": speed.speed,
            "model_speed": v_model,
            "front": front,
            "downward_reach": down.reach,
            "threshold": threshold,
        },
        notes=notes,
    )
