"""Eq. 2 validation — the analytic speed model across the parameter space.

``v_silent = σ·d / (T_exec + T_comm)``.  We sweep neighbor distance,
protocol, direction, execution-phase length and message size, measure the
wave speed in the simulator, and tabulate model-vs-measured.  This is the
paper's central quantitative claim for noise-free systems; the paper
validates it implicitly through Figs. 4, 5 and 7 — here it gets an explicit
table.
"""

from __future__ import annotations

from repro.core import measure_speed, silent_speed
from repro.experiments.base import ExperimentResult
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.topology import CommDomain
from repro.viz.tables import format_table

__all__ = ["run", "measure_configuration"]


def measure_configuration(
    d: int,
    direction: Direction,
    protocol: Protocol,
    t_exec: float,
    msg_size: int,
    n_ranks: int = 24,
    n_steps: int = 24,
    seed: int = 0,
) -> tuple[float, float]:
    """Measure one parameter combination; returns (measured, model) ranks/s."""
    net = UniformNetwork()
    source = n_ranks // 2
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=t_exec,
        msg_size=msg_size,
        pattern=CommPattern(direction=direction, distance=d, periodic=False),
        delays=(DelaySpec(rank=source, step=0, duration=5 * t_exec),),
        seed=seed,
    )
    trace = simulate(
        build_lockstep_program(cfg), SimConfig(network=net, protocol=protocol)
    )
    measured = measure_speed(trace, source, +1).speed
    t_comm = net.total_pingpong_time(msg_size, CommDomain.INTER_NODE)
    model = silent_speed(
        t_exec,
        t_comm,
        d=d,
        bidirectional=direction == Direction.BIDIRECTIONAL,
        rendezvous=protocol == Protocol.RENDEZVOUS,
    )
    return measured, model


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Sweep the Eq. 2 parameter space and tabulate model accuracy."""
    distances = (1, 2) if fast else (1, 2, 3)
    t_execs = (3e-3,) if fast else (1.5e-3, 3e-3, 6e-3)
    msg_sizes = (8192, 262144) if fast else (8192, 65536, 262144, 1048576)

    rows = []
    errors = []
    for d in distances:
        for direction in (Direction.UNIDIRECTIONAL, Direction.BIDIRECTIONAL):
            for protocol in (Protocol.EAGER, Protocol.RENDEZVOUS):
                for t_exec in t_execs:
                    for msg in msg_sizes:
                        measured, model = measure_configuration(
                            d, direction, protocol, t_exec, msg, seed=seed
                        )
                        err = abs(measured - model) / model * 100
                        errors.append(err)
                        rows.append(
                            (
                                d,
                                direction.value,
                                protocol.value,
                                t_exec * 1e3,
                                msg,
                                measured,
                                model,
                                err,
                            )
                        )

    table = format_table(
        ["d", "dir", "protocol", "T_exec [ms]", "msg [B]",
         "measured [ranks/s]", "Eq.2 [ranks/s]", "error [%]"],
        rows,
    )
    notes = [
        f"{len(rows)} configurations; max relative error "
        f"{max(errors):.2f}%, mean {sum(errors) / len(errors):.2f}%.",
        "σ = 2 applies exactly to the bidirectional+rendezvous rows; all "
        "other rows use σ = 1.",
    ]
    return ExperimentResult(
        name="eq2",
        title="Eq. 2 wave-speed model validation sweep",
        tables={"sweep": table},
        data={"rows": rows, "max_error_pct": max(errors)},
        notes=notes,
    )
