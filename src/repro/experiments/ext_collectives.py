"""Extension experiment: idle waves under collective communication.

The paper's outlook (Sec. VII) proposes extending the idle-wave speed model
to collectives.  This experiment quantifies the qualitative break: with a
logarithmic collective schedule (dissemination barrier, recursive-doubling
allreduce) a one-off delay couples the *entire* communicator within one
bulk-synchronous step — the disturbance spreads exponentially through the
rounds instead of rippling linearly at σ·d/(T_exec+T_comm).

Measured quantities per algorithm:

- the number of ranks idled in the injection step (reach after one step),
- the per-step cost of the collective (for the runtime impact),
- the total excess runtime vs. an undelayed run (the delay's footprint is
  ~the full delay for every synchronizing collective — noise cannot hide
  it behind other ranks' schedules the way it can for point-to-point
  chains).
"""

from __future__ import annotations

import numpy as np

from repro.core.timing import RunTiming
from repro.experiments.base import ExperimentResult
from repro.sim import DelaySpec, SimConfig, UniformNetwork, simulate
from repro.sim.collectives import Collective, CollectiveConfig, build_collective_program
from repro.viz.tables import format_table

__all__ = ["run", "run_collective"]

T_EXEC = 3e-3
N_RANKS = 16
N_STEPS = 8
SOURCE = 5
DELAY = 4 * T_EXEC


def run_collective(collective: Collective, delays=(), seed: int = 0,
                   n_ranks: int = N_RANKS, n_steps: int = N_STEPS):
    """Simulate one collective configuration; returns the trace."""
    cfg = CollectiveConfig(
        n_ranks=n_ranks, n_steps=n_steps, collective=collective,
        t_exec=T_EXEC, msg_size=8192, delays=tuple(delays), seed=seed,
    )
    return simulate(build_collective_program(cfg), SimConfig(network=UniformNetwork()))


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Compare delay spreading across collective algorithms."""
    delay = (DelaySpec(rank=SOURCE, step=1, duration=DELAY),)
    rows = []
    data = {}
    for coll in Collective:
        base = RunTiming.of(run_collective(coll, seed=seed))
        delayed = RunTiming.of(run_collective(coll, delays=delay, seed=seed))

        idle_delta = delayed.idle - base.idle
        # Ranks whose injection-step idle grew by a significant fraction of
        # the delay: the one-step reach of the disturbance.
        reach = int((idle_delta[:, 1] > 0.5 * DELAY).sum())
        step_cost = float(base.completion[:, 1].max() - base.completion[:, 0].max())
        excess = delayed.total_runtime() - base.total_runtime()
        rows.append(
            (coll.value, reach, N_RANKS - 1, step_cost * 1e3, excess * 1e3)
        )
        data[coll.value] = {
            "reach_one_step": reach,
            "step_cost": step_cost,
            "excess": excess,
        }

    table = format_table(
        ["collective", "ranks idled in injection step", "max possible",
         "step cost [ms]", "excess runtime [ms]"],
        rows,
    )
    notes = [
        "Logarithmic schedules (barrier, recursive doubling) couple all "
        "other ranks within the injection step: exponential spreading, not "
        "the linear sigma*d/(T_exec+T_comm) front of point-to-point chains.",
        "Every synchronizing collective passes the delay's full length into "
        "the runtime (excess ~= injected delay) — there is no propagation "
        "distance over which noise could absorb the wave.",
        f"Injected delay: {DELAY * 1e3:.0f} ms at rank {SOURCE}, step 1.",
    ]
    return ExperimentResult(
        name="ext_collectives",
        title="Extension: delay spreading under collective communication",
        tables={"spreading": table},
        data=data,
        notes=notes,
    )
