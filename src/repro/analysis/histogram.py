"""Noise histograms (Fig. 3).

The paper characterizes each system's natural noise by histogramming the
deviation of a known-duration compute phase from its ideal length over
3.3·10⁵ samples.  This module bins such samples (from the synthetic noise
models or from :func:`repro.workloads.divide.measure_host_noise`) and
extracts the summary statistics the paper quotes: mean, maximum, and the
location of secondary modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.noise import NoiseModel

__all__ = ["NoiseHistogram", "collect_noise_samples"]


@dataclass(frozen=True)
class NoiseHistogram:
    """A binned noise distribution with the paper's summary statistics."""

    counts: np.ndarray
    bin_edges: np.ndarray
    mean: float
    maximum: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: np.ndarray, bin_width: float) -> "NoiseHistogram":
        """Bin ``samples`` (seconds) with fixed-width bins from zero.

        The paper uses 640 ns bins for the SMT-on histograms and 7.2 µs
        for SMT-off.
        """
        samples = np.asarray(samples, dtype=float).ravel()
        if samples.size == 0:
            raise ValueError("need at least one sample")
        if np.any(samples < 0):
            raise ValueError("noise samples must be >= 0")
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        hi = max(float(samples.max()), bin_width)
        n_bins = int(np.ceil(hi / bin_width)) + 1
        edges = np.arange(n_bins + 1) * bin_width
        counts, _ = np.histogram(samples, bins=edges)
        return cls(
            counts=counts,
            bin_edges=edges,
            mean=float(samples.mean()),
            maximum=float(samples.max()),
            n_samples=samples.size,
        )

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def modes(self, min_separation: float = 0.0, min_fraction: float = 1e-4) -> list[float]:
        """Locations (seconds) of local maxima of the histogram.

        A bin is a mode when it is a strict local maximum, carries at least
        ``min_fraction`` of all samples, and is at least ``min_separation``
        away from a previously found (larger) mode.  Detects the bimodality
        of the Omni-Path SMT-off configuration (second peak ≈ 660 µs).
        """
        c = self.counts.astype(float)
        centers = self.bin_centers
        candidates = []
        for i in range(len(c)):
            left = c[i - 1] if i > 0 else -1.0
            right = c[i + 1] if i + 1 < len(c) else -1.0
            if c[i] > left and c[i] >= right and c[i] >= min_fraction * self.n_samples:
                candidates.append((c[i], centers[i]))
        candidates.sort(reverse=True)
        modes: list[float] = []
        for _, center in candidates:
            if all(abs(center - m) >= min_separation for m in modes):
                modes.append(float(center))
        return modes

    def is_bimodal(self, min_separation: float, min_fraction: float = 1e-4) -> bool:
        """True when at least two well-separated modes exist."""
        return len(self.modes(min_separation=min_separation, min_fraction=min_fraction)) >= 2

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples with delay above ``threshold`` seconds."""
        mask = self.bin_centers > threshold
        return float(self.counts[mask].sum()) / self.n_samples


def collect_noise_samples(
    noise: NoiseModel,
    n_samples: int,
    seed: int = 0,
) -> np.ndarray:
    """Draw ``n_samples`` per-phase delays from a noise model (seconds).

    The paper collects 3.3·10⁵ points per configuration; the fig. 3
    experiment driver calls this with that count.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    return noise.sample(rng, (n_samples,))
