"""Analysis utilities shared by the experiments: histograms, statistics,
Fourier spectra of desync patterns, and timeline extraction."""

from repro.analysis.desync import desync_onset, overlap_efficiency, skew_spread
from repro.analysis.fourier import (
    SkewSpectrum,
    dominant_wavelength,
    skew_profile,
    skew_spectrum,
)
from repro.analysis.histogram import NoiseHistogram, collect_noise_samples
from repro.analysis.statistics import RunStatistics, summarize, sweep_statistics
from repro.analysis.timeline import (
    IntervalKind,
    TimelineInterval,
    full_timeline,
    rank_timeline,
    snapshot_positions,
)

__all__ = [
    "IntervalKind",
    "NoiseHistogram",
    "RunStatistics",
    "SkewSpectrum",
    "TimelineInterval",
    "collect_noise_samples",
    "desync_onset",
    "dominant_wavelength",
    "full_timeline",
    "overlap_efficiency",
    "rank_timeline",
    "skew_profile",
    "skew_spectrum",
    "skew_spread",
    "snapshot_positions",
    "summarize",
    "sweep_statistics",
]
