"""Fourier analysis of desynchronization patterns.

The prior work the paper builds on (Markidis et al. 2015, Peng et al. 2016)
used Fourier analysis to identify idle waves as nondispersive modes; and
the paper's own Fig. 2 observes that the emergent LBM desynchronization
pattern has "a fundamental wavelength equal to the size of the system".
This module extracts that structure from a run's per-rank skew profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timing import RunTiming

__all__ = ["SkewSpectrum", "skew_profile", "skew_spectrum", "dominant_wavelength"]


def skew_profile(run, step: int) -> np.ndarray:
    """Per-rank skew at one time step: completion minus the rank mean.

    This is the quantity plotted (as marker positions) in Fig. 2: how far
    ahead/behind each rank is at a given bulk-synchronous step.
    """
    timing = RunTiming.of(run)
    if not 0 <= step < timing.n_steps:
        raise IndexError(f"step {step} out of range [0, {timing.n_steps})")
    col = timing.completion[:, step]
    return col - col.mean()


@dataclass(frozen=True)
class SkewSpectrum:
    """Spatial Fourier spectrum of a per-rank skew profile."""

    wavenumbers: np.ndarray  # cycles per chain length, k = 0 .. N/2
    power: np.ndarray
    n_ranks: int

    def dominant_mode(self) -> int:
        """Wavenumber (k >= 1) with the largest power."""
        if len(self.power) < 2:
            raise ValueError("spectrum has no nonzero wavenumber")
        return int(1 + np.argmax(self.power[1:]))

    def dominant_wavelength(self) -> float:
        """Wavelength of the dominant mode, in ranks."""
        return self.n_ranks / self.dominant_mode()

    def mode_fraction(self, k: int) -> float:
        """Fraction of total (k >= 1) power carried by mode ``k``."""
        if not 1 <= k < len(self.power):
            raise IndexError(f"mode {k} out of range [1, {len(self.power)})")
        total = self.power[1:].sum()
        if total == 0:
            return 0.0
        return float(self.power[k] / total)


def skew_spectrum(run, step: int) -> SkewSpectrum:
    """Spatial FFT of the skew profile at one step."""
    profile = skew_profile(run, step)
    n = profile.size
    spec = np.fft.rfft(profile)
    return SkewSpectrum(
        wavenumbers=np.arange(spec.size),
        power=np.abs(spec) ** 2,
        n_ranks=n,
    )


def dominant_wavelength(run, step: int) -> float:
    """Wavelength (in ranks) of the strongest spatial mode at ``step``.

    For the Fig. 2 LBM pattern this approaches the system size (one full
    wavelength across the 100 ranks).
    """
    return skew_spectrum(run, step).dominant_wavelength()
