"""Timeline extraction: the data behind the paper's rank/time diagrams.

Figures 4–7 and 9 are rank-vs-time diagrams where execution phases are
white, injected delays blue, and idle/communication periods red.  This
module extracts exactly those intervals from a run so the viz layer (or an
external plotting tool) can render them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.timing import RunTiming

__all__ = ["IntervalKind", "TimelineInterval", "rank_timeline", "full_timeline", "snapshot_positions"]


class IntervalKind(Enum):
    """Classification of a timeline interval (the figures' colors)."""

    EXEC = "exec"  # white
    DELAY = "delay"  # blue
    IDLE = "idle"  # red


@dataclass(frozen=True)
class TimelineInterval:
    """One colored bar in a rank's timeline."""

    rank: int
    step: int
    kind: IntervalKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def rank_timeline(run, rank: int, base_exec: float | None = None) -> list[TimelineInterval]:
    """Intervals of one rank, in time order.

    The execution phase of a step is split into EXEC (the nominal duration)
    and DELAY (any excess over ``base_exec`` — injected delay or noise), so
    an injected delay shows up as the figures' blue bar.  The Waitall span
    becomes IDLE.

    Parameters
    ----------
    base_exec:
        Nominal phase duration; defaults to the run's recorded ``t_exec``,
        else the minimum observed phase duration.
    """
    timing = RunTiming.of(run)
    if not 0 <= rank < timing.n_ranks:
        raise IndexError(f"rank {rank} out of range [0, {timing.n_ranks})")
    wait_start = timing.wait_start()
    exec_start = np.empty(timing.n_steps)
    exec_start[0] = 0.0
    exec_start[1:] = timing.completion[rank, :-1]
    durations = timing.exec_end[rank] - exec_start
    if base_exec is None:
        base_exec = timing.t_exec or float(durations.min())

    out: list[TimelineInterval] = []
    for k in range(timing.n_steps):
        e0, e1 = float(exec_start[k]), float(timing.exec_end[rank, k])
        if e1 - e0 > base_exec * (1 + 1e-9):
            split = e0 + base_exec
            out.append(TimelineInterval(rank, k, IntervalKind.EXEC, e0, split))
            out.append(TimelineInterval(rank, k, IntervalKind.DELAY, split, e1))
        else:
            out.append(TimelineInterval(rank, k, IntervalKind.EXEC, e0, e1))
        w0, w1 = float(wait_start[rank, k]), float(timing.completion[rank, k])
        if w1 > w0:
            out.append(TimelineInterval(rank, k, IntervalKind.IDLE, w0, w1))
    return out


def full_timeline(run, base_exec: float | None = None) -> list[list[TimelineInterval]]:
    """Timelines of all ranks (outer index = rank)."""
    timing = RunTiming.of(run)
    return [rank_timeline(timing, r, base_exec=base_exec) for r in range(timing.n_ranks)]


def snapshot_positions(run, steps: "list[int]") -> np.ndarray:
    """Wall-clock position of each rank at selected steps (Fig. 2's markers).

    Returns an array of shape ``[len(steps), n_ranks]`` with the completion
    time of each rank at each requested step.
    """
    timing = RunTiming.of(run)
    out = np.empty((len(steps), timing.n_ranks))
    for i, step in enumerate(steps):
        if not 0 <= step < timing.n_steps:
            raise IndexError(f"step {step} out of range [0, {timing.n_steps})")
        out[i] = timing.completion[:, step]
    return out
