"""Desynchronization metrics.

The motivating experiments (Figs. 1 and 2) revolve around how far a
bulk-synchronous program drifts from lockstep.  This module quantifies
that drift from a run's timing matrices:

- :func:`skew_spread` — peak-to-peak completion skew per step (the
  amplitude of the Fig. 2 pattern),
- :func:`desync_onset` — the step at which the spread first exceeds a
  fraction of the phase length (when the instability "switches on"),
- :func:`overlap_efficiency` — how much of the communication time is
  hidden behind computation, the quantity that desynchronization improves
  and the naive nonoverlapping model (Eq. 1) assumes to be zero.
"""

from __future__ import annotations

import numpy as np

from repro.core.timing import RunTiming

__all__ = ["skew_spread", "desync_onset", "overlap_efficiency"]


def skew_spread(run) -> np.ndarray:
    """Per-step peak-to-peak spread of completion times (seconds).

    Zero for a perfectly synchronized run; the Fig. 2 amplitude when the
    desynchronization pattern has developed.
    """
    timing = RunTiming.of(run)
    return np.ptp(timing.completion, axis=0)


def desync_onset(run, fraction: float = 0.5) -> int | None:
    """First step whose skew spread exceeds ``fraction × T_exec``.

    Returns ``None`` if the run never desynchronizes that far.  Uses the
    recorded nominal phase length; falls back to the median execution
    duration.
    """
    if fraction <= 0:
        raise ValueError(f"fraction must be > 0, got {fraction}")
    timing = RunTiming.of(run)
    t_exec = timing.t_exec
    if not t_exec:
        durations = np.diff(timing.completion, axis=1)
        t_exec = float(np.median(durations)) if durations.size else 0.0
    if t_exec <= 0:
        raise ValueError("cannot determine the nominal phase length")
    spread = skew_spread(run)
    hits = np.nonzero(spread > fraction * t_exec)[0]
    return int(hits[0]) if hits.size else None


def overlap_efficiency(run) -> float:
    """Fraction of the nonoverlapping time budget saved by the run.

    ``1 - runtime / (sum of max exec per step + sum of max wait per step)``:
    0 means the run is as slow as the fully serialized exec+comm model;
    positive values mean computation and communication (of *different
    ranks*) overlapped — the automatic-overlap effect of Fig. 1.
    """
    timing = RunTiming.of(run)
    if timing.n_steps == 0:
        raise ValueError("run has no time budget to compare against "
                         "(zero steps)")
    exec_start = np.empty_like(timing.exec_end)
    exec_start[:, 0] = 0.0
    exec_start[:, 1:] = timing.completion[:, :-1]
    exec_durations = timing.exec_end - exec_start
    serial_budget = float(
        exec_durations.max(axis=0).sum() + timing.idle.max(axis=0).sum()
    )
    if serial_budget <= 0:
        raise ValueError("run has no time budget to compare against")
    return 1.0 - timing.total_runtime() / serial_budget
