"""Multi-run statistics helpers.

The paper reports medians with min/max whiskers over repeated runs
(Fig. 1's performance whiskers, Fig. 8's 15-run decay statistics).  These
helpers standardize that reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

__all__ = ["RunStatistics", "summarize", "sweep_statistics"]


@dataclass(frozen=True)
class RunStatistics:
    """Median / min / max / mean / std over repeated measurements."""

    median: float
    minimum: float
    maximum: float
    mean: float
    std: float
    n: int

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "RunStatistics":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        return cls(
            median=float(np.median(arr)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            n=arr.size,
        )

    @property
    def whisker_low(self) -> float:
        """Distance from median down to the minimum."""
        return self.median - self.minimum

    @property
    def whisker_high(self) -> float:
        """Distance from median up to the maximum."""
        return self.maximum - self.median


def summarize(samples: Iterable[float]) -> RunStatistics:
    """Shorthand for :meth:`RunStatistics.from_samples`."""
    return RunStatistics.from_samples(samples)


def sweep_statistics(
    parameter_values: Iterable,
    runner: Callable[[object, int], float],
    n_runs: int,
    seed0: int = 0,
) -> "list[tuple[object, RunStatistics]]":
    """Run ``runner(value, seed)`` ``n_runs`` times per parameter value.

    Returns ``[(value, RunStatistics), ...]`` — the shape of Fig. 8's data
    (one statistics entry per noise level).  Seeds are ``seed0 + run`` so
    sweeps are reproducible yet runs are independent.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    out = []
    for value in parameter_values:
        samples = [runner(value, seed0 + run) for run in range(n_runs)]
        out.append((value, RunStatistics.from_samples(samples)))
    return out
