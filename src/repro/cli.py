"""Command-line interface: regenerate any paper figure's data.

Usage::

    repro-experiment fig4            # fast variant of the Fig. 4 study
    repro-experiment fig8 --full     # paper-sized run counts
    repro-experiment all --seed 3    # everything
    python -m repro fig5             # module form
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Propagation and Decay of Injected "
            "One-Off Delays on Clusters' (CLUSTER 2019) on the built-in "
            "cluster simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all"],
        help="experiment id (paper figure) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized parameters (slower; default is a fast variant)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(name, fast=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
