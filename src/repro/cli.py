"""Command-line interface: regenerate any paper figure's data.

Usage::

    repro-experiment fig4                 # fast variant of the Fig. 4 study
    repro-experiment fig8 --full          # paper-sized run counts
    repro-experiment all --seed 3         # everything
    repro-experiment ext_campaign --jobs 4 --cache-dir ~/.cache/repro
    python -m repro fig5                  # module form

Campaign-style experiments execute through the parallel campaign runtime
(:mod:`repro.runtime`): ``--jobs N`` shards their independent runs over N
worker processes (``--jobs 0`` auto-detects the CPU count) and
``--cache-dir`` enables the content-addressed on-disk result store, so a
repeated invocation skips every already-simulated run.  Results are
bit-identical for a given ``--seed`` regardless of ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments import EXPERIMENTS, RuntimeOptions, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Propagation and Decay of Injected "
            "One-Off Delays on Clusters' (CLUSTER 2019) on the built-in "
            "cluster simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all"],
        help="experiment id (paper figure) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized parameters (slower; default is a fast variant)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for campaign experiments "
            "(default 1 = serial, 0 = auto-detect CPU count)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result store; repeated runs skip cached work",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything even if --cache-dir has results",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    run_all = args.experiment == "all"
    names = sorted(EXPERIMENTS) if run_all else [args.experiment]
    runtime = RuntimeOptions(
        jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )

    failures: "list[tuple[str, BaseException]]" = []
    for name in names:
        t0 = time.perf_counter()
        try:
            result = run_experiment(
                name, fast=not args.full, seed=args.seed, runtime=runtime
            )
        except Exception as exc:  # noqa: BLE001 — keep the campaign going
            elapsed = time.perf_counter() - t0
            failures.append((name, exc))
            traceback.print_exc(file=sys.stderr)
            print(f"\n[{name} FAILED after {elapsed:.1f}s: {exc}]\n")
            continue
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")

    if run_all:
        n_ok = len(names) - len(failures)
        print(f"[summary: {n_ok}/{len(names)} experiments succeeded]")
    if failures:
        for name, exc in failures:
            print(f"[FAILED {name}: {type(exc).__name__}: {exc}]")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
