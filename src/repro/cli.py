"""Command-line interface: paper figures and declarative scenarios.

Usage::

    repro-experiment fig4                 # fast variant of the Fig. 4 study
    repro-experiment fig8 --full          # paper-sized run counts
    repro-experiment all --seed 3         # everything
    repro-experiment list --json          # experiment ids + descriptions
    repro-experiment ext_campaign --jobs 4 --cache-dir ~/.cache/repro
    python -m repro fig5                  # module form

    repro-experiment scenario list                      # bundled scenarios
    repro-experiment scenario run fig4_single_delay     # run one scenario
    repro-experiment scenario validate my_scenario.toml # compile-check a file
    repro-experiment scenario sweep campaign_rate_sweep --jobs 4

    repro-experiment report list                        # bundled reports
    repro-experiment report run fig7_speed --cache-dir ~/.cache/repro
    repro-experiment report validate my_report.toml     # compile-check a file

    repro-experiment store ls --cache-dir ~/.cache/repro       # contents
    repro-experiment store migrate --cache-dir ~/.cache/repro  # pack shards
    repro-experiment store gc --cache-dir ~/.cache/repro       # prune orphans

    repro-experiment stats show run.jsonl        # telemetry span tree
    repro-experiment stats summarize run.jsonl   # hit rates, phase times
    repro-experiment stats diff a.jsonl b.jsonl  # compare two runs

    repro-experiment runs ls --cache-dir ~/.cache/repro    # run ledger
    repro-experiment runs show RUN_ID --cache-dir ~/.cache/repro
    repro-experiment runs tail -n 5 --cache-dir ~/.cache/repro

    repro-experiment perf record --cache-dir ~/.cache/repro --run latest
    repro-experiment perf history --cache-dir ~/.cache/repro
    repro-experiment perf check --cache-dir ~/.cache/repro  # trend gate

    repro-experiment golden --check       # verify the golden-trace corpus
    repro-experiment golden --regen       # regenerate tests/golden/

Campaign-style experiments and scenario sweeps execute through the
parallel campaign runtime (:mod:`repro.runtime`): ``--jobs N`` shards
their independent runs over N worker processes (``--jobs 0`` auto-detects
the CPU count) and ``--cache-dir`` enables the content-addressed on-disk
result store, so a repeated invocation skips every already-simulated run.
Results are bit-identical for a given ``--seed`` regardless of ``--jobs``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback

from repro.experiments import (
    EXPERIMENTS,
    RuntimeOptions,
    experiment_descriptions,
    run_experiment,
)

__all__ = ["main", "build_parser", "jobs_arg"]


def jobs_arg(text: str) -> int:
    """``--jobs`` parser: non-negative int (0 = auto-detect CPU count)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = auto-detect CPU count), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce the figures of 'Propagation and Decay of Injected "
            "One-Off Delays on Clusters' (CLUSTER 2019) on the built-in "
            "cluster simulator, or run declarative scenarios "
            "('repro-experiment scenario --help')."
        ),
        epilog=(
            "The 'scenario', 'report', 'store', 'stats', 'runs', and "
            "'perf' commands delegate to their own subcommands: "
            "repro-experiment scenario {list,validate,run,sweep}, "
            "repro-experiment report {list,validate,run}, "
            "repro-experiment store {ls,migrate,gc}, "
            "repro-experiment stats {show,summarize,diff,trace}, "
            "repro-experiment runs {ls,show,tail}, "
            "repro-experiment perf {record,history,diff,check} ..."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all", "list", "scenario", "report",
                 "store", "stats", "runs", "perf", "golden"],
        help=(
            "experiment id (paper figure), 'all', 'list', 'scenario' / "
            "'report' / 'store' / 'stats' / 'runs' / 'perf' (see epilog), "
            "or 'golden' (golden-trace corpus)"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized parameters (slower; default is a fast variant)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=jobs_arg,
        default=1,
        metavar="N",
        help=(
            "worker processes for campaign experiments "
            "(default 1 = serial, 0 = auto-detect CPU count)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result store; repeated runs skip cached work",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything even if --cache-dir has results",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable output (only for 'list')",
    )
    return parser


def _list_experiments(as_json: bool) -> int:
    descriptions = experiment_descriptions()
    if as_json:
        print(json.dumps(
            [{"id": name, "description": desc}
             for name, desc in sorted(descriptions.items())],
            indent=2,
        ))
        return 0
    width = max(len(name) for name in descriptions)
    for name in sorted(descriptions):
        print(f"{name:<{width}}  {descriptions[name]}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        from repro.scenarios.cli import scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.reports.cli import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "store":
        from repro.runtime.cli import store_main

        return store_main(argv[1:])
    if argv and argv[0] == "stats":
        from repro.telemetry.cli import stats_main

        return stats_main(argv[1:])
    if argv and argv[0] == "runs":
        from repro.obs.cli import runs_main

        return runs_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.perf.cli import perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "golden":
        from repro.golden import golden_main

        return golden_main(argv[1:])

    args = build_parser().parse_args(argv)
    if args.experiment in ("scenario", "report", "store", "stats", "runs",
                           "perf", "golden"):
        # Reachable only when the subcommand is not the first token (e.g.
        # 'repro-experiment --seed 3 scenario'); its own arguments cannot
        # be recovered once argparse consumed the flags.
        print(f"usage: repro-experiment {args.experiment} ... "
              f"('{args.experiment}' must come first)", file=sys.stderr)
        return 2
    if args.experiment == "list":
        return _list_experiments(args.as_json)

    run_all = args.experiment == "all"
    names = sorted(EXPERIMENTS) if run_all else [args.experiment]
    runtime = RuntimeOptions(
        jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )

    failures: "list[tuple[str, BaseException]]" = []
    for name in names:
        t0 = time.perf_counter()
        try:
            result = run_experiment(
                name, fast=not args.full, seed=args.seed, runtime=runtime
            )
        except Exception as exc:  # noqa: BLE001 — keep the campaign going
            elapsed = time.perf_counter() - t0
            failures.append((name, exc))
            traceback.print_exc(file=sys.stderr)
            print(f"\n[{name} FAILED after {elapsed:.1f}s: {exc}]\n")
            continue
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")

    if run_all:
        n_ok = len(names) - len(failures)
        print(f"[summary: {n_ok}/{len(names)} experiments succeeded]")
    if failures:
        for name, exc in failures:
            print(f"[FAILED {name}: {type(exc).__name__}: {exc}]")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
