"""Sweep expansion: a scenario's ``sweep`` block → campaign runtime grid.

A scenario with a ``sweep`` section declares axes of dotted spec paths.
:func:`scenario_sweep_spec` expands those into a
:class:`~repro.runtime.spec.SweepSpec` over :func:`repro.scenarios.tasks.
scenario_task`, so scenario grids inherit everything the PR-1 runtime
provides: deterministic per-task seeds, process-pool sharding, the
content-addressed result store, and bit-identical serial/parallel
results.  :func:`run_scenario_sweep` executes the grid and aggregates
per-point summaries.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.obs import events
from repro.runtime import CampaignResult, SweepSpec, run_campaign
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec, apply_overrides
from repro.viz.tables import format_table

__all__ = ["GridExpansion", "SweepPointSummary", "ScenarioSweepResult",
           "expand_scenario_grid", "scenario_sweep_spec",
           "run_scenario_sweep"]


def _grid_points(spec: ScenarioSpec) -> "list[dict]":
    """Cartesian product of the sweep axes as override dicts (last-fastest)."""
    sweep = spec.sweep
    if sweep is None or not sweep.axes:
        return [{}]
    names = [axis.path for axis in sweep.axes]
    grids = [axis.values for axis in sweep.axes]
    return [dict(zip(names, combo)) for combo in itertools.product(*grids)]


@dataclass(frozen=True)
class GridExpansion:
    """A scenario's validated sweep grid, ready for task expansion.

    The single definition of "what a scenario grid is" — shared by the
    scenario sweep path and the report subsystem (which dispatches the
    same grid through a different task function), so their engine
    resolution and point order can never drift apart.
    """

    document: dict  # sweep-less scenario document (ScenarioSpec.to_dict)
    points: "tuple[dict, ...]"  # per-point {dotted.path: value} overrides
    compiled: tuple  # CompiledScenario per point, same order
    engine: str  # concrete resolved engine ("lockstep" | "dag")
    replicates: int


def expand_scenario_grid(spec: ScenarioSpec, engine: str = "auto") -> GridExpansion:
    """Validate and expand a scenario's grid (compiling every point).

    Every grid point is validated up front (overrides applied, document
    re-parsed, point compiled), so a sweep whose axis values break the
    spec fails here with the offending path — not inside a worker
    process halfway through the campaign.

    ``engine="auto"`` is resolved to the *concrete* engine the compiler
    chooses before it enters any task parameters, so the content hash
    that addresses the result store names the engine whose semantics
    produced the result — a dispatch-rule change can never silently serve
    results computed under the old rule.  A grid whose points resolve to
    *different* engines is rejected (force one explicitly): the literal
    ``"auto"`` must never reach a cache key.

    Scenarios *without* a ``sweep`` block expand to a single-point grid,
    which keeps caching and sharding uniform for the CLI.
    """
    document = spec.without_sweep().to_dict()
    points = _grid_points(spec)
    compiled_points = []
    chosen: "set[str]" = set()
    for point in points:
        candidate = apply_overrides(document, point) if point else document
        try:
            compiled = compile_scenario(ScenarioSpec.from_dict(candidate),
                                        engine=engine)
        except ScenarioError as exc:
            raise ScenarioError(
                f"sweep point {point!r} does not compile: {exc.message}",
                path=exc.path, scenario=spec.name,
            ) from exc
        compiled_points.append(compiled)
        chosen.add(compiled.engine)
    resolved_engine = engine
    if engine == "auto":
        if len(chosen) != 1:
            # Never let the literal "auto" reach the cache key: a key that
            # does not name the engine would survive dispatch-rule changes
            # and serve results computed under the old rule.
            raise ScenarioError(
                f"sweep grid points resolve to multiple engines "
                f"({sorted(chosen)}); force one with engine='lockstep' or "
                "engine='dag' so cached results are unambiguous",
                path="sweep", scenario=spec.name,
            )
        resolved_engine = chosen.pop()
    return GridExpansion(
        document=document,
        points=tuple(points),
        compiled=tuple(compiled_points),
        engine=resolved_engine,
        replicates=spec.sweep.replicates if spec.sweep is not None else 1,
    )


def scenario_sweep_spec(
    spec: ScenarioSpec,
    base_seed: "int | None" = None,
    engine: str = "auto",
) -> SweepSpec:
    """Expand a scenario into a campaign-runtime sweep declaration.

    See :func:`expand_scenario_grid` for the validation and engine
    resolution this inherits.
    """
    grid = expand_scenario_grid(spec, engine=engine)
    return SweepSpec(
        fn="repro.scenarios.tasks:scenario_task",
        base={"scenario": grid.document, "engine": grid.engine},
        axes=(
            ("overrides", grid.points),
            ("replicate", tuple(range(grid.replicates))),
        ),
        base_seed=spec.seed if base_seed is None else base_seed,
    )


@dataclass(frozen=True)
class SweepPointSummary:
    """Aggregated outputs of one grid point across its replicates."""

    overrides: dict
    n_runs: int
    outputs: dict  # output kind -> {field: mean across replicates}


@dataclass(frozen=True)
class ScenarioSweepResult:
    """A finished scenario sweep: the campaign plus per-point summaries."""

    spec: ScenarioSpec
    campaign: CampaignResult
    points: "tuple[SweepPointSummary, ...]"

    def render(self) -> str:
        """Printable per-point summary table."""
        axis_names = sorted({k for p in self.points for k in p.overrides})
        numeric: "list[str]" = []
        for point in self.points:
            for kind, fields in point.outputs.items():
                for name, value in fields.items():
                    col = f"{kind}.{name}"
                    if isinstance(value, (int, float)) and col not in numeric:
                        numeric.append(col)
        rows = []
        for point in self.points:
            row: list = [point.overrides.get(a, "") for a in axis_names]
            row.append(point.n_runs)
            for col in numeric:
                kind, name = col.split(".", 1)
                value = point.outputs.get(kind, {}).get(name, "")
                row.append(f"{value:.6g}" if isinstance(value, float) else value)
            rows.append(tuple(row))
        header = [*axis_names, "runs", *numeric]
        title = f"=== scenario sweep {self.spec.name}: {len(self.campaign)} runs, " \
                f"{self.campaign.n_cached} cached, " \
                f"{self.campaign.n_executed} executed on {self.campaign.jobs} worker(s) ==="
        return title + "\n" + format_table(header, rows)


def _mean_outputs(values: "list[dict]") -> dict:
    """Per-output-kind mean of every numeric field across replicate runs."""
    out: dict = {}
    kinds = {k for v in values for k in v["outputs"]}
    for kind in sorted(kinds):
        fields: dict = {}
        dicts = [v["outputs"][kind] for v in values if kind in v["outputs"]]
        for name in dicts[0]:
            samples = [d[name] for d in dicts
                       if isinstance(d.get(name), (int, float))
                       and not isinstance(d.get(name), bool)]
            if samples and len(samples) == len(dicts):
                fields[name] = float(np.mean(samples))
        out[kind] = fields
    return out


def _sweep_spec_key(tasks) -> str:
    """One content hash naming the whole sweep: the digest of its task keys.

    Same alphabet/length as a store key, but derived from *all* task
    hashes — two sweeps share it iff they would hit the same records.
    Only computed when a run consumer is live (events enabled).
    """
    import hashlib

    joined = "\n".join(task.key for task in tasks).encode()
    return hashlib.sha256(joined).hexdigest()[:32]


def run_scenario_sweep(
    spec: ScenarioSpec,
    base_seed: "int | None" = None,
    engine: str = "auto",
    jobs: int = 1,
    store=None,
    batch: bool = True,
    retry=None,
    stall_action: str = "warn",
) -> ScenarioSweepResult:
    """Run a scenario's grid through the campaign runtime and aggregate.

    ``jobs``/``store``/``retry``/``stall_action`` are forwarded to
    :func:`repro.runtime.executor.run_campaign`; task failures raise.
    With ``batch`` (the default) contiguous replicate blocks of one grid
    point execute as single batched-engine invocations — results are
    bit-identical to unbatched runs, only faster.  A
    :class:`~repro.runtime.retry.RetryPolicy` makes transient task
    failures self-heal with results bit-identical to a first-attempt
    success.
    """
    from repro.scenarios.batch import ScenarioTaskBatcher

    with telemetry.span("sweep.expand", scenario=spec.name):
        sweep = scenario_sweep_spec(spec, base_seed=base_seed, engine=engine)
        tasks = sweep.tasks()
    # Run-lifecycle events are owned by the outermost runner: a sweep
    # executed inside another run (a report's campaign) stays silent.
    owns_run = events.enabled() and not events.in_run()
    if owns_run:
        events.emit(
            "run.start", kind="scenario.sweep", name=spec.name,
            n_tasks=len(tasks), engine=dict(sweep.base)["engine"],
            seed_root=sweep.base_seed, jobs=jobs,
            spec_key=_sweep_spec_key(tasks),
        )
    campaign = run_campaign(
        tasks, jobs=jobs, store=store,
        batcher=ScenarioTaskBatcher() if batch else None,
        retry=retry, stall_action=stall_action,
    )
    if owns_run:
        events.emit("run.finish",
                    status="failed" if campaign.failures else "ok",
                    n_tasks=len(campaign), n_failed=len(campaign.failures),
                    n_cached=campaign.n_cached,
                    n_executed=campaign.n_executed)
    campaign.raise_failures()

    with telemetry.span("sweep.aggregate", n_runs=len(campaign)):
        grouped: "dict[str, tuple[dict, list]]" = {}
        for result in campaign:
            overrides = result.spec.kwargs.get("overrides") or {}
            key = json.dumps(overrides, sort_keys=True)
            grouped.setdefault(key, (overrides, []))[1].append(result.value)
        points = tuple(
            SweepPointSummary(overrides=dict(overrides), n_runs=len(values),
                              outputs=_mean_outputs(values))
            for overrides, values in grouped.values()
        )
    return ScenarioSweepResult(spec=spec, campaign=campaign, points=points)
