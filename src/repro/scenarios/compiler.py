"""Scenario compilation: resolve a spec into runnable simulator objects.

:func:`compile_scenario` validates a :class:`~repro.scenarios.spec.ScenarioSpec`
against the machine presets (:mod:`repro.cluster.presets`), the workload
models (:mod:`repro.workloads`), and the noise/campaign generators
(:mod:`repro.sim.noise`, :mod:`repro.sim.campaign`), then picks the engine:

- the **vectorized lockstep engine** is the default for every declarative
  scenario — including hierarchical placement (``machine.ppn``), which it
  handles natively by resolving per-message flight times and overheads
  through the preset's topology (intra-node vs inter-node tiers);
- the **DAG engine** remains available as the independent reference
  (``engine="dag"``) and as the only engine for irregular programs built
  outside the scenario layer (collectives, custom operation schedules).
  Forced-DAG scenarios execute on the build-once/propagate-many
  :class:`~repro.sim.engine.StaticDag` path: campaign replicate blocks
  run as one batched propagation
  (:func:`~repro.sim.engine.simulate_dag_batch`) and per-draw runs share
  a cached structure, so even the reference engine sweeps at vectorized
  speed.  :meth:`CompiledScenario.sim_config` is the single definition of
  the :class:`~repro.sim.engine.SimConfig` every DAG execution path uses.

All failures raise :class:`~repro.scenarios.errors.ScenarioError` naming
the offending spec field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import MachineSpec
from repro.cluster.presets import get_machine, noise_for_smt
from repro.scenarios.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec
from repro.sim.campaign import DelayCampaign
from repro.sim.delay import DelaySpec
from repro.sim.engine import SimConfig
from repro.sim.mpi import DEFAULT_EAGER_LIMIT, Protocol, select_protocol
from repro.sim.network import NetworkModel, UniformNetwork
from repro.sim.noise import (
    BimodalNoise,
    ExponentialNoise,
    GammaNoise,
    NoiseModel,
    NoNoise,
    UniformNoise,
)
from repro.sim.program import CommPattern, Direction, LockstepConfig
from repro.sim.topology import CommDomain, ProcessMapping
from repro.workloads import DivideWorkload, LbmWorkload, TriadWorkload

__all__ = ["CompiledScenario", "compile_scenario", "lockstep_eligible"]

ENGINES = ("auto", "lockstep", "dag")

_DEFAULT_MSG_SIZE = 8192


def lockstep_eligible(spec: ScenarioSpec) -> bool:
    """Whether the scenario fits the vectorized lockstep engine's contract.

    Every declarative scenario does: the scenario layer only builds
    standard bulk-synchronous lockstep programs, and the engine is
    hierarchy-aware — ``machine.ppn`` placement resolves to per-message
    network tiers instead of forcing the DAG fallback.  The function is
    kept (always ``True``) as the dispatch predicate so irregular program
    shapes added later have a single place to opt out.
    """
    return True


@dataclass(frozen=True)
class CompiledScenario:
    """A validated, fully resolved scenario, ready to execute.

    ``cfg`` carries the explicit delays only; campaign delays are drawn
    at run time from the run's seed (see :mod:`repro.scenarios.runner`).
    """

    spec: ScenarioSpec
    engine: str  # "lockstep" | "dag"
    cfg: LockstepConfig
    network: NetworkModel
    domain: CommDomain
    mapping: "ProcessMapping | None"
    machine: "MachineSpec | None"
    protocol: Protocol  # as requested (AUTO allowed)
    resolved_protocol: Protocol  # concrete eager/rendezvous for cfg.msg_size
    eager_limit: int
    noise: NoiseModel
    campaign: "DelayCampaign | None"
    threads: int

    @property
    def t_exec(self) -> float:
        return self.cfg.t_exec

    @property
    def t_comm(self) -> float:
        """One message's end-to-end time — the ``T_comm`` of Eq. 2."""
        return self.network.total_pingpong_time(self.cfg.msg_size, self.domain)

    def sim_config(self) -> SimConfig:
        """The DAG engine configuration for this scenario.

        Shared by every forced-DAG execution path (serial runs, batched
        replicate blocks, report timing tasks) so the structure-cache key
        — which includes the network/mapping/protocol configuration —
        is identical across them.
        """
        return SimConfig(
            network=self.network,
            mapping=self.mapping,
            eager_limit=self.eager_limit,
            protocol=self.protocol,
        )


def _resolve_machine(spec: ScenarioSpec) -> "tuple[MachineSpec | None, UniformNetwork | None, CommDomain]":
    m = spec.machine
    domain = CommDomain[m.domain.upper()]
    if m.preset is not None:
        machine = get_machine(m.preset)
        # Collapse the preset's per-domain network onto the configured
        # domain: exact for Hockney (latency + size/bandwidth), which all
        # presets use.
        lat = machine.network.transfer_time(0, domain)
        probe = 1_000_000
        bw = probe / (machine.network.transfer_time(probe, domain) - lat)
        uniform = UniformNetwork(latency=lat, bandwidth=bw,
                                 overhead=machine.network.send_overhead(domain))
        return machine, uniform, domain
    overhead = m.overhead if m.overhead is not None else 5e-7
    return None, UniformNetwork(latency=m.latency, bandwidth=m.bandwidth,
                                overhead=overhead), domain


def _resolve_workload(spec: ScenarioSpec, machine: "MachineSpec | None") -> "tuple[float, int]":
    """Resolve (t_exec, default msg_size) from the workload section."""
    w = spec.workload
    total_cores = spec.n_ranks * w.threads
    if w.kind == "synthetic":
        return w.t_exec, _DEFAULT_MSG_SIZE
    if machine is None:
        raise ScenarioError(
            f"the {w.kind!r} workload derives its phase length from machine "
            "calibration; use a machine preset, not inline parameters",
            path="workload.kind", scenario=spec.name,
        )
    if w.kind == "divide":
        workload = DivideWorkload.for_duration(machine.cpu, w.t_exec)
        return workload.ideal_duration, _DEFAULT_MSG_SIZE
    if w.kind == "stream":
        triad = TriadWorkload(
            n_elements=w.n_elements if w.n_elements is not None else 50_000_000,
            v_net=w.v_net if w.v_net is not None else 2_000_000,
        )
        t_exec = triad.work_per_rank(total_cores) / machine.b_core
        return t_exec, triad.v_net
    # lbm
    domain3 = w.lbm_domain if w.lbm_domain is not None else (302, 302, 302)
    if domain3[0] < total_cores:
        raise ScenarioError(
            f"LBM outer dimension {domain3[0]} is smaller than the "
            f"{total_cores} cores ({spec.n_ranks} ranks x {w.threads} "
            "threads) it must be decomposed over",
            path="workload.lbm_domain", scenario=spec.name,
        )
    lbm = LbmWorkload(domain=tuple(domain3), n_ranks=total_cores)
    t_exec = lbm.work_bytes_per_rank / machine.b_core
    return t_exec, int(lbm.halo_bytes)


def _resolve_noise(spec: ScenarioSpec, machine: "MachineSpec | None",
                   t_exec: float) -> NoiseModel:
    n = spec.noise
    if n.model == "none":
        return NoNoise()
    if n.model == "natural":
        if machine is None:
            raise ScenarioError(
                "'natural' noise is a machine calibration (Fig. 3); it "
                "needs a machine preset, not inline parameters",
                path="noise.model", scenario=spec.name,
            )
        return noise_for_smt(machine, spec.machine.smt)

    def mean(required: bool = True) -> "float | None":
        if n.mean_delay is not None:
            return n.mean_delay
        if n.level is not None:
            return n.level * t_exec
        if required:
            raise ScenarioError(
                f"the {n.model!r} noise model needs 'mean_delay' (seconds) "
                "or 'level' (relative E)",
                path="noise", scenario=spec.name,
            )
        return None

    if n.model == "exponential":
        return ExponentialNoise(mean_delay=mean())
    if n.model == "gamma":
        return GammaNoise(mean_delay=mean(),
                          shape_k=n.shape_k if n.shape_k is not None else 1.0)
    if n.model == "uniform":
        if n.high is None:
            raise ScenarioError("the 'uniform' noise model needs 'high'",
                                path="noise.high", scenario=spec.name)
        return UniformNoise(low=n.low if n.low is not None else 0.0, high=n.high)
    # bimodal — defaults are the Meggie SMT-off calibration (Fig. 3b)
    return BimodalNoise(
        base=ExponentialNoise(mean_delay=mean()),
        spike_delay=n.spike_delay if n.spike_delay is not None else 660e-6,
        spike_probability=(n.spike_probability
                           if n.spike_probability is not None else 0.008),
        spike_jitter=n.spike_jitter if n.spike_jitter is not None else 0.08,
    )


def compile_scenario(spec: ScenarioSpec, engine: str = "auto") -> CompiledScenario:
    """Validate and resolve a scenario (cheap: pure object construction).

    Parameters
    ----------
    spec:
        The declarative scenario.  A ``sweep`` block is ignored here —
        compilation targets the base point (sweeps expand via
        :mod:`repro.scenarios.sweep`).
    engine:
        ``auto`` dispatches to the lockstep engine (the default for every
        declarative scenario, hierarchical or flat); ``lockstep``/``dag``
        force one — ``dag`` runs the authoritative reference engine.
    """
    if engine not in ENGINES:
        raise ScenarioError(
            f"unknown engine {engine!r}; choose from {list(ENGINES)}"
        )

    machine, uniform_net, domain = _resolve_machine(spec)
    if spec.machine.smt is not None and spec.noise.model != "natural":
        raise ScenarioError(
            "'smt' selects the machine's natural-noise calibration, but "
            f"noise.model is {spec.noise.model!r} — it would be silently "
            "ignored; set noise.model = 'natural' or drop 'smt'",
            path="machine.smt", scenario=spec.name,
        )
    t_exec, default_msg = _resolve_workload(spec, machine)
    noise = _resolve_noise(spec, machine, t_exec)

    c = spec.comm
    msg_size = c.msg_size if c.msg_size is not None else default_msg
    eager_limit = (c.eager_limit if c.eager_limit is not None
                   else DEFAULT_EAGER_LIMIT)
    protocol = Protocol(c.protocol)
    resolved_protocol = select_protocol(msg_size, eager_limit, protocol)

    if c.distance >= spec.n_ranks:
        raise ScenarioError(
            f"communication distance {c.distance} needs at least "
            f"{c.distance + 1} ranks, got n_ranks = {spec.n_ranks}",
            path="comm.distance", scenario=spec.name,
        )
    pattern = CommPattern(
        direction=(Direction.BIDIRECTIONAL if c.direction == "bidirectional"
                   else Direction.UNIDIRECTIONAL),
        distance=c.distance,
        periodic=c.periodic,
    )

    delays = []
    for i, entry in enumerate(spec.delays):
        if entry.rank >= spec.n_ranks:
            raise ScenarioError(
                f"rank {entry.rank} is outside the {spec.n_ranks}-rank run",
                path=f"delays[{i}].rank", scenario=spec.name,
            )
        if entry.step >= spec.n_steps:
            raise ScenarioError(
                f"step {entry.step} is outside the {spec.n_steps}-step run",
                path=f"delays[{i}].step", scenario=spec.name,
            )
        delays.append(DelaySpec(rank=entry.rank, step=entry.step,
                                duration=entry.seconds(t_exec)))

    campaign = None
    if spec.campaign is not None:
        lo, hi = spec.campaign.bounds_seconds(t_exec)
        campaign = DelayCampaign(rate=spec.campaign.rate,
                                 duration_low=lo, duration_high=hi)

    if "wave_speed" in spec.outputs and not delays:
        raise ScenarioError(
            "the 'wave_speed' output fits the idle wave of an explicit "
            "delay; add at least one entry to 'delays'",
            path="outputs", scenario=spec.name,
        )

    mapping = None
    if spec.machine.ppn is not None:
        assert machine is not None  # enforced at parse time
        try:
            mapping = machine.mapping(spec.n_ranks, ppn=spec.machine.ppn)
        except ValueError as exc:
            raise ScenarioError(str(exc), path="machine.ppn",
                                scenario=spec.name) from exc

    eligible = lockstep_eligible(spec)
    chosen = engine if engine != "auto" else ("lockstep" if eligible else "dag")

    # Hierarchical placement resolves against the preset's per-domain
    # network on both engines; flat scenarios keep the collapsed uniform
    # model (a single well-defined T_comm).
    network: NetworkModel
    if mapping is not None:
        network = machine.network
    else:
        network = uniform_net

    cfg = LockstepConfig(
        n_ranks=spec.n_ranks,
        n_steps=spec.n_steps,
        t_exec=t_exec,
        msg_size=msg_size,
        pattern=pattern,
        noise=noise,
        delays=tuple(delays),
        seed=spec.seed,
    )

    return CompiledScenario(
        spec=spec,
        engine=chosen,
        cfg=cfg,
        network=network,
        domain=domain,
        mapping=mapping,
        machine=machine,
        protocol=protocol,
        resolved_protocol=resolved_protocol,
        eager_limit=eager_limit,
        noise=noise,
        campaign=campaign,
        threads=spec.workload.threads,
    )
