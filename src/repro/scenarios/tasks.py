"""Campaign task functions for scenario execution.

Scenario sweeps execute through the parallel campaign runtime
(:mod:`repro.runtime`), whose tasks must be importable top-level functions
taking plain-data keyword arguments.  :func:`scenario_task` is that
bridge: the scenario travels as its ``to_dict`` document, per-point
overrides as a ``{dotted.path: value}`` dict, and the derived per-task
seed drives all randomness — so sweep results are bit-identical for any
worker count and cacheable by content hash.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.scenarios.spec import ScenarioSpec, apply_overrides

__all__ = ["scenario_task"]


def scenario_task(
    scenario: Mapping,
    overrides: "Mapping[str, Any] | None" = None,
    replicate: int = 0,
    engine: str = "auto",
    seed: int = 0,
) -> dict:
    """Run one scenario grid point; returns the outputs' data dict.

    Parameters
    ----------
    scenario:
        Scenario document (``ScenarioSpec.to_dict`` form), *without* its
        sweep block.
    overrides:
        Sweep-axis values for this grid point, as dotted spec paths.
    replicate:
        Replicate index; only distinguishes otherwise-identical grid
        points (the derived ``seed`` varies with it).
    engine:
        Engine selection, as in :func:`repro.scenarios.runner.run_scenario`.
    seed:
        Derived per-task seed (from the sweep's base seed).
    """
    from repro.scenarios.runner import run_scenario

    data = dict(scenario)
    data.pop("sweep", None)
    if overrides:
        data = apply_overrides(data, overrides)
    spec = ScenarioSpec.from_dict(data)
    run = run_scenario(spec, seed=seed, engine=engine)
    return {
        "outputs": run.data,
        "engine": run.compiled.engine,
        "n_campaign_delays": run.n_campaign_delays,
        "replicate": int(replicate),
    }
