"""Campaign task functions for scenario execution.

Scenario sweeps execute through the parallel campaign runtime
(:mod:`repro.runtime`), whose tasks must be importable top-level functions
taking plain-data keyword arguments.  :func:`scenario_task` is that
bridge: the scenario travels as its ``to_dict`` document, per-point
overrides as a ``{dotted.path: value}`` dict, and the derived per-task
seed drives all randomness — so sweep results are bit-identical for any
worker count and cacheable by content hash.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.scenarios.spec import ScenarioSpec, apply_overrides

__all__ = ["resolve_task_scenario", "scenario_task"]


def resolve_task_scenario(
    scenario: Mapping, overrides: "Mapping[str, Any] | None" = None
) -> ScenarioSpec:
    """Resolve a task's scenario document + overrides into a spec.

    The single definition of how campaign tasks interpret their scenario
    parameters — shared by :func:`scenario_task` and the batched path
    (:class:`repro.scenarios.batch.ScenarioTaskBatcher`), so the two can
    never drift apart and break their bit-identity contract.
    """
    data = dict(scenario)
    data.pop("sweep", None)
    if overrides:
        data = apply_overrides(data, overrides)
    return ScenarioSpec.from_dict(data)


def scenario_task(
    scenario: Mapping,
    overrides: "Mapping[str, Any] | None" = None,
    replicate: int = 0,
    engine: str = "auto",
    seed: int = 0,
) -> dict:
    """Run one scenario grid point; returns the outputs' data dict.

    Parameters
    ----------
    scenario:
        Scenario document (``ScenarioSpec.to_dict`` form), *without* its
        sweep block.
    overrides:
        Sweep-axis values for this grid point, as dotted spec paths.
    replicate:
        Replicate index; only distinguishes otherwise-identical grid
        points (the derived ``seed`` varies with it).
    engine:
        Engine selection, as in :func:`repro.scenarios.runner.run_scenario`.
    seed:
        Derived per-task seed (from the sweep's base seed).
    """
    from repro.scenarios.runner import run_scenario

    spec = resolve_task_scenario(scenario, overrides)
    run = run_scenario(spec, seed=seed, engine=engine)
    return {
        "outputs": run.data,
        "engine": run.compiled.engine,
        "n_campaign_delays": run.n_campaign_delays,
        "replicate": int(replicate),
    }
