"""``repro-experiment scenario`` subcommands.

::

    repro-experiment scenario list [--json]
    repro-experiment scenario validate [NAME_OR_FILE ...] (default: all bundled)
    repro-experiment scenario run NAME_OR_FILE [--seed N] [--engine E] ...
    repro-experiment scenario sweep NAME_OR_FILE [--jobs N] [--cache-dir DIR] ...

``NAME_OR_FILE`` is a bundled scenario name (see ``scenario list``) or a
path to a ``.toml``/``.json`` file anywhere on disk.  ``run`` executes the
scenario's base point — or, when the scenario declares a ``sweep`` block,
the whole grid through the campaign runtime.  ``sweep`` always goes
through the runtime (sharded over ``--jobs`` workers and cached in
``--cache-dir``), even for single-point scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import jobs_arg
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.errors import ScenarioError
from repro.scenarios.registry import (
    bundled_scenario_names,
    load_bundled_scenario,
    resolve_scenario,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.sweep import run_scenario_sweep

__all__ = ["scenario_main", "build_scenario_parser"]


def build_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment scenario",
        description="Declarative delay/noise scenarios: list, validate, run, sweep.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list bundled scenarios")
    p_list.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")

    p_val = sub.add_parser("validate", help="parse + compile scenarios")
    p_val.add_argument("scenarios", nargs="*", metavar="NAME_OR_FILE",
                       help="bundled names or file paths (default: all bundled)")

    for name, helptext in (("run", "execute a scenario and print its report"),
                           ("sweep", "run the scenario grid via the campaign runtime")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("scenario", metavar="NAME_OR_FILE")
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
        p.add_argument("--engine", choices=["auto", "lockstep", "dag"],
                       default="auto", help="engine selection (default: auto)")
        p.add_argument("--jobs", type=jobs_arg, default=1, metavar="N",
                       help="worker processes for sweeps (0 = auto)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed result store for sweep runs")
        p.add_argument("--no-batch", action="store_true",
                       help="run sweep replicates one engine call at a time "
                            "instead of batched (results are identical)")
        p.add_argument("--profile", action="store_true",
                       help="record telemetry (spans, cache hit rates) and "
                            "print a summary; results are unchanged")
        p.add_argument("--telemetry-out", default=None, metavar="FILE",
                       help="write the run's telemetry JSONL here "
                            "(implies --profile); inspect with "
                            "'repro-experiment stats'")
        p.add_argument("--progress", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="live progress line on stderr (default: auto "
                            "when stderr is a TTY)")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry failed tasks up to N times with "
                            "deterministic seed-jittered backoff (results "
                            "are bit-identical to a first-attempt success)")
        p.add_argument("--retry-backoff", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base backoff between retry attempts; doubles "
                            "per attempt (default: 0.05)")
        p.add_argument("--stall-action", choices=["warn", "retry"],
                       default="warn",
                       help="watchdog response to stalled tasks: warn only, "
                            "or abandon the stalled block and re-dispatch "
                            "its tasks (default: warn)")
        p.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume an interrupted sweep: completed tasks "
                            "are served from the run's cache, and the new "
                            "ledger record links back via resumed_from "
                            "(requires --cache-dir)")
    return parser


def _store(cache_dir: "str | None"):
    if cache_dir is None:
        return None
    from repro.runtime.store import ResultStore

    store = ResultStore(cache_dir)
    # Fail before the campaign starts, not after it computed results it
    # cannot persist.
    store.ensure_writable()
    return store


def _retry_policy(args):
    if getattr(args, "retries", 0):
        from repro.runtime.retry import RetryPolicy

        return RetryPolicy(retries=args.retries,
                           backoff_s=args.retry_backoff)
    return None


def _resume_record(args, spec) -> "tuple[dict | None, str | None]":
    """Resolve ``--resume RUN_ID`` to its ledger record.

    Returns ``(record, None)`` on success and ``(None, message)`` when the
    resume target is missing, ambiguous, or names a different sweep —
    resuming a run whose grid does not hash to the same spec key would
    silently execute the *wrong* campaign against the old cache.
    """
    if not getattr(args, "resume", None):
        return None, None
    if args.cache_dir is None:
        return None, ("--resume requires --cache-dir: completed tasks are "
                      "skipped via the result store of the interrupted run")
    from repro.obs.ledger import RunLedger
    from repro.scenarios.sweep import _sweep_spec_key, scenario_sweep_spec

    try:
        record = RunLedger(args.cache_dir).find(args.resume)
    except KeyError as exc:
        return None, str(exc.args[0])
    sweep = scenario_sweep_spec(spec, base_seed=args.seed,
                                engine=args.engine)
    spec_key = _sweep_spec_key(sweep.tasks())
    if record.get("spec_key") and record["spec_key"] != spec_key:
        return None, (
            f"run {record['id']} swept a different grid "
            f"(spec_key {record['spec_key']}, this invocation {spec_key}); "
            "pass the same scenario, --seed, and --engine to resume it")
    return record, None


def _maybe_profiled(args, label: str, tracker=None):
    """Telemetry wiring for ``--profile`` / ``--telemetry-out`` runs.

    Returns a no-op context unless profiling was requested; profiled runs
    additionally persist their record next to the store artifacts when a
    cache dir is in play.  With a live run ``tracker`` the written
    telemetry path is recorded in the run's ledger entry.
    """
    if not (getattr(args, "profile", False) or args.telemetry_out):
        from contextlib import nullcontext

        return nullcontext()
    from repro import telemetry

    return telemetry.profiled(
        label, out=args.telemetry_out, cache_dir=args.cache_dir,
        on_write=tracker.set_telemetry if tracker is not None else None,
    )


def _cmd_list(args) -> int:
    rows = []
    for name in bundled_scenario_names():
        spec = load_bundled_scenario(name)
        # Report the engine the compiler actually resolves to under the
        # default dispatch, not a separate eligibility heuristic.
        rows.append({
            "name": name,
            "description": spec.description,
            "engine": compile_scenario(spec).engine,
            "sweep_size": spec.sweep.size if spec.sweep is not None else 1,
        })
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    width = max((len(r["name"]) for r in rows), default=4)
    for r in rows:
        grid = f" [sweep x{r['sweep_size']}]" if r["sweep_size"] > 1 else ""
        print(f"{r['name']:<{width}}  ({r['engine']}){grid}  {r['description']}")
    return 0


def _cmd_validate(args) -> int:
    targets = args.scenarios or bundled_scenario_names()
    failures = 0
    for target in targets:
        try:
            spec = resolve_scenario(target)
            compile_scenario(spec)
            if spec.sweep is not None:
                from repro.scenarios.sweep import scenario_sweep_spec

                scenario_sweep_spec(spec)
        except ScenarioError as exc:
            failures += 1
            print(f"FAIL  {target}: {exc}")
        else:
            print(f"ok    {target} ({spec.name})")
    if failures:
        print(f"[{failures}/{len(targets)} scenario(s) failed validation]")
        return 1
    print(f"[{len(targets)} scenario(s) valid]")
    return 0


def _observed_sweep(args, spec) -> int:
    """One observed sweep: event bus + progress + ledger + exit summary."""
    from repro.obs import observe_run
    from repro.runtime.store import StoreError

    resumed, problem = _resume_record(args, spec)
    if problem is not None:
        print(f"scenario error: {problem}", file=sys.stderr)
        return 2
    try:
        with observe_run("scenario.sweep", spec.name,
                         cache_dir=args.cache_dir,
                         progress=args.progress) as tracker:
            if resumed is not None:
                tracker.set_resumed_from(resumed["id"])
            with _maybe_profiled(args, "scenario.sweep", tracker):
                result = run_scenario_sweep(
                    spec, base_seed=args.seed, engine=args.engine,
                    jobs=args.jobs, store=_store(args.cache_dir),
                    batch=not args.no_batch,
                    retry=_retry_policy(args),
                    stall_action=args.stall_action,
                )
            tracker.set_retry_wasted(result.campaign.retry_wasted_s)
            print(result.render())
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_run(args) -> int:
    spec = resolve_scenario(args.scenario)
    if spec.sweep is not None:
        return _observed_sweep(args, spec)
    if getattr(args, "resume", None):
        print("scenario error: --resume only applies to sweeps (this "
              "scenario has no sweep block)", file=sys.stderr)
        return 2
    from repro.obs import observe_run

    with observe_run("scenario.run", spec.name, cache_dir=args.cache_dir,
                     progress=args.progress) as tracker:
        with _maybe_profiled(args, "scenario.run", tracker):
            run = run_scenario(spec, seed=args.seed, engine=args.engine)
        print(run.render())
    return 0


def _cmd_sweep(args) -> int:
    return _observed_sweep(args, resolve_scenario(args.scenario))


def scenario_main(argv: "list[str] | None" = None) -> int:
    args = build_scenario_parser().parse_args(argv)
    handler = {"list": _cmd_list, "validate": _cmd_validate,
               "run": _cmd_run, "sweep": _cmd_sweep}[args.command]
    try:
        return handler(args)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(scenario_main())
