"""Declarative scenarios: spec → compile → dispatch.

This package turns arbitrary delay/noise experiments into *data*: a
scenario file (TOML/JSON) names a machine, a workload, a communication
pattern, noise and delay-injection models, and the outputs to report —
and the pipeline does the rest:

- :mod:`repro.scenarios.spec` — frozen plain-data spec with strict,
  path-precise validation (:class:`ScenarioSpec` and its sections).
- :mod:`repro.scenarios.loader` — TOML/JSON file loading.
- :mod:`repro.scenarios.compiler` — resolution against the machine
  presets, workload models, and noise/campaign generators, plus engine
  dispatch: the batched hierarchy-aware lockstep engine by default
  (including ``machine.ppn`` placement), the DAG engine as the forced
  independent reference.
- :mod:`repro.scenarios.runner` — deterministic execution and output
  evaluation (:func:`run_scenario`, batched :func:`run_scenario_batch`).
- :mod:`repro.scenarios.sweep` — ``sweep:`` block expansion into
  :class:`repro.runtime.SweepSpec` grids: sharded, cached, bit-identical
  across worker counts.
- :mod:`repro.scenarios.batch` — the campaign-runtime batcher that runs
  contiguous replicate blocks as single batched-engine invocations.
- :mod:`repro.scenarios.registry` — the bundled scenario files under
  ``scenarios/data/``.

Typical use::

    from repro.scenarios import load_bundled_scenario, run_scenario

    spec = load_bundled_scenario("fig4_single_delay")
    run = run_scenario(spec)
    print(run.render())
"""

from repro.scenarios.batch import ScenarioTaskBatcher
from repro.scenarios.compiler import (
    CompiledScenario,
    compile_scenario,
    lockstep_eligible,
)
from repro.scenarios.errors import ScenarioError
from repro.scenarios.loader import load_scenario_file, parse_scenario_text
from repro.scenarios.registry import (
    BUNDLED_SCENARIO_DIR,
    bundled_scenario_names,
    iter_bundled_scenarios,
    load_bundled_scenario,
    resolve_scenario,
)
from repro.scenarios.runner import ScenarioRun, run_scenario, run_scenario_batch
from repro.scenarios.spec import (
    CampaignSection,
    CommSection,
    DelayEntry,
    MachineSection,
    NoiseSection,
    ScenarioSpec,
    SweepAxis,
    SweepSection,
    WorkloadSection,
    apply_overrides,
)
from repro.scenarios.sweep import (
    ScenarioSweepResult,
    SweepPointSummary,
    run_scenario_sweep,
    scenario_sweep_spec,
)

__all__ = [
    "BUNDLED_SCENARIO_DIR",
    "CampaignSection",
    "CommSection",
    "CompiledScenario",
    "DelayEntry",
    "MachineSection",
    "NoiseSection",
    "ScenarioError",
    "ScenarioRun",
    "ScenarioSpec",
    "ScenarioSweepResult",
    "ScenarioTaskBatcher",
    "SweepAxis",
    "SweepPointSummary",
    "SweepSection",
    "WorkloadSection",
    "apply_overrides",
    "bundled_scenario_names",
    "compile_scenario",
    "iter_bundled_scenarios",
    "load_bundled_scenario",
    "load_scenario_file",
    "lockstep_eligible",
    "parse_scenario_text",
    "resolve_scenario",
    "run_scenario",
    "run_scenario_batch",
    "run_scenario_sweep",
    "scenario_sweep_spec",
]
