"""Scenario execution: compiled spec → engine run → outputs.

One entry point, :func:`run_scenario`, owns the full deterministic
pipeline:

1. draw the delay campaign's schedule (if any) and the noise matrix from
   a single :class:`numpy.random.Generator` seeded by the run seed, so a
   scenario + seed is bit-reproducible across processes;
2. execute on the engine the compiler chose (or an explicit override) —
   both engines consume the *same* execution-time matrix, which is what
   makes cross-engine results bit-identical on the lockstep contract;
3. evaluate the requested outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.timing import RunTiming
from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.outputs import compute_outputs
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import SimConfig, simulate
from repro.sim.hybrid import HybridConfig, hybrid_exec_times
from repro.sim.lockstep import simulate_lockstep
from repro.sim.program import build_lockstep_program

__all__ = ["ScenarioRun", "run_scenario"]


@dataclass
class ScenarioRun:
    """Everything one scenario execution produced."""

    compiled: CompiledScenario
    seed: int
    timing: RunTiming
    n_campaign_delays: int
    data: dict
    tables: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.compiled.spec.name

    def render(self) -> str:
        """Printable report (same shape as the experiment drivers')."""
        spec = self.compiled.spec
        header = f"=== scenario {self.name}"
        if spec.description:
            header += f": {spec.description}"
        header += " ==="
        parts = [header,
                 f"[engine={self.compiled.engine} seed={self.seed} "
                 f"ranks={spec.n_ranks} steps={spec.n_steps} "
                 f"protocol={self.compiled.resolved_protocol.value}"
                 + (f" campaign_delays={self.n_campaign_delays}"
                    if self.compiled.campaign is not None else "")
                 + "]"]
        for kind, text in self.tables.items():
            parts.append(f"\n--- {kind} ---")
            parts.append(text)
        return "\n".join(parts)


def run_scenario(
    scenario: "ScenarioSpec | CompiledScenario",
    seed: "int | None" = None,
    engine: str = "auto",
) -> ScenarioRun:
    """Execute one scenario and evaluate its outputs.

    Parameters
    ----------
    scenario:
        A spec (compiled here) or an already compiled scenario.  A
        ``sweep`` block is ignored — this runs the base point; use
        :mod:`repro.scenarios.sweep` for grids.
    seed:
        Run seed; defaults to the spec's own ``seed``.  All randomness
        (campaign schedule, noise) derives from it.
    engine:
        Engine override, forwarded to the compiler when ``scenario`` is a
        spec.  Ignored for pre-compiled scenarios.
    """
    if isinstance(scenario, CompiledScenario):
        compiled = scenario
    else:
        compiled = compile_scenario(scenario, engine=engine)
    spec = compiled.spec
    run_seed = spec.seed if seed is None else int(seed)
    rng = np.random.default_rng(run_seed)

    cfg = compiled.cfg
    campaign_delays: tuple = ()
    if compiled.campaign is not None:
        campaign_delays = compiled.campaign.draw(cfg.n_ranks, cfg.n_steps, rng)
        cfg = replace(cfg, delays=cfg.delays + campaign_delays)
    if run_seed != cfg.seed:
        cfg = replace(cfg, seed=run_seed)

    if compiled.threads > 1:
        hybrid = HybridConfig(
            n_processes=cfg.n_ranks, threads=compiled.threads,
            n_steps=cfg.n_steps, t_exec=cfg.t_exec, msg_size=cfg.msg_size,
            pattern=cfg.pattern, noise=compiled.noise, delays=cfg.delays,
            seed=run_seed,
        )
        exec_times = hybrid_exec_times(hybrid, rng)
    else:
        from repro.sim.program import build_exec_times

        exec_times = build_exec_times(cfg, rng)

    if compiled.engine == "lockstep":
        result = simulate_lockstep(
            cfg, exec_times=exec_times, network=compiled.network,
            domain=compiled.domain, protocol=compiled.protocol,
            eager_limit=compiled.eager_limit,
        )
        timing = RunTiming.from_lockstep(result)
    else:
        program = build_lockstep_program(cfg, exec_times)
        trace = simulate(program, SimConfig(
            network=compiled.network, mapping=compiled.mapping,
            eager_limit=compiled.eager_limit, protocol=compiled.protocol,
        ))
        timing = RunTiming.from_trace(trace)

    data, tables = compute_outputs(compiled, timing)
    return ScenarioRun(
        compiled=compiled, seed=run_seed, timing=timing,
        n_campaign_delays=len(campaign_delays), data=data, tables=tables,
    )
