"""Scenario execution: compiled spec → engine run → outputs.

Two entry points own the full deterministic pipeline:

- :func:`run_scenario` executes one scenario:

  1. draw the delay campaign's schedule (if any) and the noise matrix from
     a single :class:`numpy.random.Generator` seeded by the run seed, so a
     scenario + seed is bit-reproducible across processes;
  2. execute on the engine the compiler chose (or an explicit override) —
     both engines consume the *same* execution-time matrix, which is what
     makes cross-engine results agree to machine precision;
  3. evaluate the requested outputs.

- :func:`run_scenario_batch` executes B runs of *one* compiled scenario
  (differing only in their seeds — e.g. the replicate draws of a delay
  campaign) as a single ``[B, n_ranks, n_steps]`` invocation of the
  batched engine — the lockstep recurrence, or the DAG engine's
  build-once/propagate-many :class:`~repro.sim.engine.StaticDag` sweep
  for forced-DAG scenarios.  Step 1 and 3 run per seed exactly as in the
  serial path and both batched propagations are elementwise along the
  batch axis, so every run's outputs are **bit-identical** to what
  :func:`run_scenario` produces for the same seed — the contract the
  campaign runtime's content-addressed cache relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro import telemetry
from repro.obs import events
from repro.core.timing import RunTiming
from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.outputs import compute_outputs
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import simulate_dag, simulate_dag_batch
from repro.sim.hybrid import HybridConfig, hybrid_exec_times
from repro.sim.lockstep import simulate_lockstep, simulate_lockstep_batch
from repro.sim.program import build_lockstep_program

__all__ = ["PreparedRun", "ScenarioRun", "run_scenario", "run_scenario_batch"]


@dataclass
class ScenarioRun:
    """Everything one scenario execution produced."""

    compiled: CompiledScenario
    seed: int
    timing: RunTiming
    n_campaign_delays: int
    data: dict
    tables: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.compiled.spec.name

    def render(self) -> str:
        """Printable report (same shape as the experiment drivers')."""
        spec = self.compiled.spec
        header = f"=== scenario {self.name}"
        if spec.description:
            header += f": {spec.description}"
        header += " ==="
        parts = [header,
                 f"[engine={self.compiled.engine} seed={self.seed} "
                 f"ranks={spec.n_ranks} steps={spec.n_steps} "
                 f"protocol={self.compiled.resolved_protocol.value}"
                 + (f" campaign_delays={self.n_campaign_delays}"
                    if self.compiled.campaign is not None else "")
                 + "]"]
        for kind, text in self.tables.items():
            parts.append(f"\n--- {kind} ---")
            parts.append(text)
        return "\n".join(parts)


@dataclass
class PreparedRun:
    """One scenario run's fully drawn inputs, ready for an engine.

    ``cfg`` carries the merged delays (explicit + campaign draw) and the
    run seed; ``exec_times`` is the complete ``[n_ranks, n_steps]``
    execution-time matrix — the only thing either engine consumes besides
    the static pattern/network parameters.
    """

    cfg: "object"  # LockstepConfig
    exec_times: np.ndarray
    seed: int
    n_campaign_delays: int


def prepare_scenario_run(
    compiled: CompiledScenario, seed: "int | None" = None
) -> PreparedRun:
    """Draw all randomness for one run of a compiled scenario.

    Deterministic per ``(compiled, seed)``: the campaign schedule and the
    noise matrix both derive from one generator seeded by the run seed,
    exactly as the serial pipeline has always done.
    """
    spec = compiled.spec
    run_seed = spec.seed if seed is None else int(seed)
    with telemetry.span("scenario.prepare", scenario=spec.name,
                        seed=run_seed):
        return _prepare_scenario_run_inner(compiled, run_seed)


def _prepare_scenario_run_inner(
    compiled: CompiledScenario, run_seed: int
) -> PreparedRun:
    spec = compiled.spec
    rng = np.random.default_rng(run_seed)

    cfg = compiled.cfg
    campaign_delays: tuple = ()
    if compiled.campaign is not None:
        campaign_delays = compiled.campaign.draw(cfg.n_ranks, cfg.n_steps, rng)
        cfg = replace(cfg, delays=cfg.delays + campaign_delays)
    if run_seed != cfg.seed:
        cfg = replace(cfg, seed=run_seed)

    if compiled.threads > 1:
        hybrid = HybridConfig(
            n_processes=cfg.n_ranks, threads=compiled.threads,
            n_steps=cfg.n_steps, t_exec=cfg.t_exec, msg_size=cfg.msg_size,
            pattern=cfg.pattern, noise=compiled.noise, delays=cfg.delays,
            seed=run_seed,
        )
        exec_times = hybrid_exec_times(hybrid, rng)
    else:
        from repro.sim.program import build_exec_times

        exec_times = build_exec_times(cfg, rng)

    return PreparedRun(
        cfg=cfg, exec_times=exec_times, seed=run_seed,
        n_campaign_delays=len(campaign_delays),
    )


def _execute_prepared(compiled: CompiledScenario, prepared: PreparedRun) -> RunTiming:
    """Run one prepared scenario on the compiled engine choice."""
    with telemetry.span("scenario.execute", engine=compiled.engine):
        return _execute_prepared_inner(compiled, prepared)


def _execute_prepared_inner(
    compiled: CompiledScenario, prepared: PreparedRun
) -> RunTiming:
    if compiled.engine == "lockstep":
        result = simulate_lockstep(
            prepared.cfg, exec_times=prepared.exec_times,
            network=compiled.network, domain=compiled.domain,
            protocol=compiled.protocol, eager_limit=compiled.eager_limit,
            mapping=compiled.mapping,
        )
        return RunTiming.from_lockstep(result)
    # DAG reference: columnar fast path — the structure comes from the
    # build cache (shared across a campaign's draws) and no OpRecord
    # objects are materialized; matrices are bitwise identical to the
    # full-trace path.
    program = build_lockstep_program(prepared.cfg, prepared.exec_times)
    result = simulate_dag(program, compiled.sim_config(),
                          exec_times=prepared.exec_times)
    return RunTiming.from_dag(result)


def finish_scenario_run(
    compiled: CompiledScenario, prepared: PreparedRun, timing: RunTiming
) -> ScenarioRun:
    """Evaluate the scenario's requested outputs against a finished run."""
    with telemetry.span("scenario.finish"):
        data, tables = compute_outputs(compiled, timing)
    return ScenarioRun(
        compiled=compiled, seed=prepared.seed, timing=timing,
        n_campaign_delays=prepared.n_campaign_delays, data=data, tables=tables,
    )


def run_scenario(
    scenario: "ScenarioSpec | CompiledScenario",
    seed: "int | None" = None,
    engine: str = "auto",
) -> ScenarioRun:
    """Execute one scenario and evaluate its outputs.

    Parameters
    ----------
    scenario:
        A spec (compiled here) or an already compiled scenario.  A
        ``sweep`` block is ignored — this runs the base point; use
        :mod:`repro.scenarios.sweep` for grids.
    seed:
        Run seed; defaults to the spec's own ``seed``.  All randomness
        (campaign schedule, noise) derives from it.
    engine:
        Engine override, forwarded to the compiler when ``scenario`` is a
        spec.  Ignored for pre-compiled scenarios.
    """
    if isinstance(scenario, CompiledScenario):
        compiled = scenario
    else:
        with telemetry.span("scenario.compile"):
            compiled = compile_scenario(scenario, engine=engine)
    # Own the run lifecycle only at top level: as one task of a sweep or
    # report campaign this stays silent (the campaign emits per-task
    # events; worker-local run.* events are dropped on absorption).
    owns_run = events.enabled() and not events.in_run()
    if owns_run:
        run_seed = compiled.spec.seed if seed is None else int(seed)
        events.emit("run.start", kind="scenario.run",
                    name=compiled.spec.name, n_tasks=1,
                    engine=compiled.engine, seed_root=run_seed, jobs=1)
        events.emit("task.start", index=0)
    prepared = prepare_scenario_run(compiled, seed)
    timing = _execute_prepared(compiled, prepared)
    run = finish_scenario_run(compiled, prepared, timing)
    if owns_run:
        events.emit("task.done", index=0)
        events.emit("run.finish", status="ok", n_tasks=1, n_failed=0)
    return run


def run_scenario_batch(
    scenario: "ScenarioSpec | CompiledScenario",
    seeds: Sequence[int],
    engine: str = "auto",
) -> "list[ScenarioRun]":
    """Execute one scenario for many seeds as a single batched engine call.

    The runs share everything but their seed (campaign schedule, noise
    draw), which is the shape of a delay-campaign replicate block.  On the
    lockstep engine the B execution-time matrices are stacked into one
    ``[B, n_ranks, n_steps]`` recurrence; on the DAG engine (forced, or
    chosen for a program the fast path cannot express) the B draws flow
    through one cached :class:`~repro.sim.engine.StaticDag` structure as
    a single batched propagation.  Either way, each returned
    :class:`ScenarioRun` is bit-identical to
    ``run_scenario(scenario, seed=s)`` for its seed.
    """
    if isinstance(scenario, CompiledScenario):
        compiled = scenario
    else:
        with telemetry.span("scenario.compile"):
            compiled = compile_scenario(scenario, engine=engine)
    if not seeds:
        return []
    prepared = [prepare_scenario_run(compiled, s) for s in seeds]

    stacked = np.stack([p.exec_times for p in prepared])
    with telemetry.span("scenario.execute", engine=compiled.engine,
                        batch=len(prepared)):
        if compiled.engine == "lockstep":
            batch = simulate_lockstep_batch(
                compiled.cfg, stacked,
                network=compiled.network, domain=compiled.domain,
                protocol=compiled.protocol, eager_limit=compiled.eager_limit,
                mapping=compiled.mapping,
            )
            from_result = RunTiming.from_lockstep
        else:
            batch = simulate_dag_batch(compiled.cfg, stacked,
                                       compiled.sim_config())
            from_result = RunTiming.from_dag
    runs = []
    for b, p in enumerate(prepared):
        result = batch[b]
        result.meta.pop("n_batch", None)
        result.meta.update({"delays": p.cfg.delays, "seed": p.seed})
        runs.append(finish_scenario_run(compiled, p, from_result(result)))
    return runs
