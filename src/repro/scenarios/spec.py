"""Plain-data scenario specs: frozen dataclasses + strict dict parsing.

A :class:`ScenarioSpec` is the declarative description of one delay/noise
experiment: a machine (preset name or inline parameters), a workload, a
communication pattern/protocol, noise and delay-injection models, the
requested outputs, and an optional ``sweep`` block that turns the scenario
into a parameter grid.  Specs are frozen, hashable, and round-trip through
``to_dict``/``from_dict`` — the dict form is what travels through the
campaign runtime (:mod:`repro.runtime`) and what TOML/JSON files load into.

Parsing is *strict*: unknown keys, wrong types, and out-of-range values
are rejected with a :class:`~repro.scenarios.errors.ScenarioError` naming
the exact dotted path of the offending field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.fields import StrictFields
from repro.scenarios.errors import ScenarioError

__all__ = [
    "MachineSection",
    "WorkloadSection",
    "CommSection",
    "NoiseSection",
    "DelayEntry",
    "CampaignSection",
    "SweepAxis",
    "SweepSection",
    "ScenarioSpec",
    "apply_overrides",
]

#: Recognized output requests (see :mod:`repro.scenarios.outputs`).
OUTPUT_KINDS = ("runtime", "timeline", "histogram", "desync", "wave_speed")

#: Machine presets resolvable via :func:`repro.cluster.presets.get_machine`.
MACHINE_PRESETS = ("emmy", "meggie", "simulated")

WORKLOAD_KINDS = ("synthetic", "divide", "stream", "lbm")
NOISE_MODELS = ("none", "natural", "exponential", "bimodal", "uniform", "gamma")
DIRECTIONS = {"unidirectional": "unidirectional", "uni": "unidirectional",
              "bidirectional": "bidirectional", "bi": "bidirectional"}
PROTOCOLS = ("auto", "eager", "rendezvous")
DOMAINS = ("intra_socket", "inter_socket", "inter_node")


class _Fields(StrictFields):
    """Scenario-flavored strict reader (errors carry the scenario name)."""

    def __init__(self, data: Any, path: str, scenario: str = "") -> None:
        self.scenario = scenario
        super().__init__(
            data, path,
            make_error=lambda message, p: ScenarioError(
                message, path=p, scenario=scenario),
            root_label="scenario",
        )


def _check_choice(value: str, choices: Any, path: str, scenario: str) -> str:
    if value not in choices:
        raise ScenarioError(
            f"{value!r} is not one of {sorted(choices)}",
            path=path, scenario=scenario,
        )
    return value


def _check_positive(value: float, path: str, scenario: str,
                    allow_zero: bool = False) -> float:
    if value < 0 or (value == 0 and not allow_zero):
        bound = ">= 0" if allow_zero else "> 0"
        raise ScenarioError(f"must be {bound}, got {value}",
                            path=path, scenario=scenario)
    return value


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineSection:
    """Where the scenario runs: a calibrated preset or inline parameters.

    Exactly one of ``preset`` (``emmy``/``meggie``/``simulated``) or the
    inline pair ``latency``/``bandwidth`` must be given.  ``smt`` selects
    the preset's SMT-on/off noise calibration (default: the machine's
    operational configuration).  ``ppn`` places ranks hierarchically
    (processes per node) — that makes the network non-uniform and forces
    the DAG engine.
    """

    preset: "str | None" = "simulated"
    smt: "str | None" = None
    ppn: "int | None" = None
    domain: str = "inter_node"
    latency: "float | None" = None
    bandwidth: "float | None" = None
    overhead: "float | None" = None

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "MachineSection":
        f = _Fields(data, "machine", scenario)
        preset = f.take("preset", "str")
        smt = f.take("smt", "str")
        ppn = f.take("ppn", "int")
        domain = f.take("domain", "str", default="inter_node")
        latency = f.take("latency", "float")
        bandwidth = f.take("bandwidth", "float")
        overhead = f.take("overhead", "float")
        f.finish()

        inline = latency is not None or bandwidth is not None or overhead is not None
        if preset is None and not inline:
            preset = "simulated"
        if preset is not None and inline:
            raise ScenarioError(
                "give either 'preset' or inline network parameters "
                "(latency/bandwidth/overhead), not both",
                path="machine", scenario=scenario,
            )
        if preset is not None:
            _check_choice(preset.strip().lower(), MACHINE_PRESETS,
                          "machine.preset", scenario)
            preset = preset.strip().lower()
        else:
            if latency is None or bandwidth is None:
                raise ScenarioError(
                    "an inline machine needs both 'latency' and 'bandwidth'",
                    path="machine", scenario=scenario,
                )
            _check_positive(latency, "machine.latency", scenario, allow_zero=True)
            _check_positive(bandwidth, "machine.bandwidth", scenario)
            if overhead is not None:
                _check_positive(overhead, "machine.overhead", scenario,
                                allow_zero=True)
        if smt is not None:
            _check_choice(smt.strip().lower(), ("on", "off"),
                          "machine.smt", scenario)
            smt = smt.strip().lower()
            if preset is None:
                raise ScenarioError(
                    "'smt' selects a preset's noise calibration; it has no "
                    "meaning for an inline machine",
                    path="machine.smt", scenario=scenario,
                )
        if ppn is not None:
            _check_positive(ppn, "machine.ppn", scenario)
            if preset is None:
                raise ScenarioError(
                    "'ppn' (hierarchical placement) needs a preset machine "
                    "with a topology",
                    path="machine.ppn", scenario=scenario,
                )
        _check_choice(domain, DOMAINS, "machine.domain", scenario)
        return cls(preset=preset, smt=smt, ppn=ppn, domain=domain,
                   latency=latency, bandwidth=bandwidth, overhead=overhead)

    def to_dict(self) -> dict:
        out: dict = {}
        if self.preset is not None:
            out["preset"] = self.preset
        for key in ("smt", "ppn", "latency", "bandwidth", "overhead"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.domain != "inter_node":
            out["domain"] = self.domain
        return out


@dataclass(frozen=True)
class WorkloadSection:
    """What each rank computes per step.

    ``synthetic`` takes ``t_exec`` at face value; ``divide`` quantizes it
    to the machine CPU's ``vdivpd`` chain (Sec. III-B); ``stream`` and
    ``lbm`` derive the phase length from the workload's per-rank memory
    traffic and the machine's core bandwidth.  ``threads`` > 1 models a
    hybrid MPI/OpenMP run: noise is drawn per thread and max-reduced per
    process (:mod:`repro.sim.hybrid`).
    """

    kind: str = "synthetic"
    t_exec: float = 3e-3
    threads: int = 1
    n_elements: "int | None" = None  # stream
    v_net: "int | None" = None  # stream
    lbm_domain: "tuple[int, int, int] | None" = None  # lbm

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "WorkloadSection":
        f = _Fields(data, "workload", scenario)
        kind = f.take("kind", "str", default="synthetic")
        t_exec = f.take("t_exec", "float", default=3e-3)
        threads = f.take("threads", "int", default=1)
        n_elements = f.take("n_elements", "int")
        v_net = f.take("v_net", "int")
        lbm_domain = f.take("lbm_domain", "list")
        f.finish()

        _check_choice(kind, WORKLOAD_KINDS, "workload.kind", scenario)
        _check_positive(t_exec, "workload.t_exec", scenario)
        _check_positive(threads, "workload.threads", scenario)
        if kind != "stream":
            for name, value in (("n_elements", n_elements), ("v_net", v_net)):
                if value is not None:
                    raise ScenarioError(
                        f"'{name}' only applies to the 'stream' workload, "
                        f"not {kind!r}",
                        path=f"workload.{name}", scenario=scenario,
                    )
        if kind != "lbm" and lbm_domain is not None:
            raise ScenarioError(
                f"'lbm_domain' only applies to the 'lbm' workload, not {kind!r}",
                path="workload.lbm_domain", scenario=scenario,
            )
        if n_elements is not None:
            _check_positive(n_elements, "workload.n_elements", scenario)
        if v_net is not None:
            _check_positive(v_net, "workload.v_net", scenario, allow_zero=True)
        if lbm_domain is not None:
            if len(lbm_domain) != 3 or not all(
                isinstance(x, int) and not isinstance(x, bool) and x >= 1
                for x in lbm_domain
            ):
                raise ScenarioError(
                    f"expected three positive ints [nx, ny, nz], got {lbm_domain!r}",
                    path="workload.lbm_domain", scenario=scenario,
                )
            lbm_domain = tuple(lbm_domain)
        return cls(kind=kind, t_exec=t_exec, threads=threads,
                   n_elements=n_elements, v_net=v_net, lbm_domain=lbm_domain)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "t_exec": self.t_exec}
        if self.threads != 1:
            out["threads"] = self.threads
        for key in ("n_elements", "v_net"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.lbm_domain is not None:
            out["lbm_domain"] = list(self.lbm_domain)
        return out


@dataclass(frozen=True)
class CommSection:
    """Communication pattern and MPI protocol of the bulk-synchronous loop."""

    direction: str = "unidirectional"
    distance: int = 1
    periodic: bool = False
    msg_size: "int | None" = None  # None -> workload default
    protocol: str = "auto"
    eager_limit: "int | None" = None

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "CommSection":
        f = _Fields(data, "comm", scenario)
        direction = f.take("direction", "str", default="unidirectional")
        distance = f.take("distance", "int", default=1)
        periodic = f.take("periodic", "bool", default=False)
        msg_size = f.take("msg_size", "int")
        protocol = f.take("protocol", "str", default="auto")
        eager_limit = f.take("eager_limit", "int")
        f.finish()

        _check_choice(direction, DIRECTIONS, "comm.direction", scenario)
        direction = DIRECTIONS[direction]
        _check_positive(distance, "comm.distance", scenario)
        _check_choice(protocol, PROTOCOLS, "comm.protocol", scenario)
        if msg_size is not None:
            _check_positive(msg_size, "comm.msg_size", scenario, allow_zero=True)
        if eager_limit is not None:
            _check_positive(eager_limit, "comm.eager_limit", scenario,
                            allow_zero=True)
        return cls(direction=direction, distance=distance, periodic=periodic,
                   msg_size=msg_size, protocol=protocol, eager_limit=eager_limit)

    def to_dict(self) -> dict:
        out: dict = {"direction": self.direction, "distance": self.distance,
                     "periodic": self.periodic, "protocol": self.protocol}
        if self.msg_size is not None:
            out["msg_size"] = self.msg_size
        if self.eager_limit is not None:
            out["eager_limit"] = self.eager_limit
        return out


@dataclass(frozen=True)
class NoiseSection:
    """Fine-grained noise model (Sec. I-A / Eq. 3 of the paper).

    ``natural`` uses the machine preset's Fig. 3 calibration (honouring
    ``machine.smt``); ``level`` expresses an exponential mean as the
    paper's relative noise level ``E`` (mean delay / t_exec) and is
    mutually exclusive with ``mean_delay``.
    """

    model: str = "none"
    mean_delay: "float | None" = None
    level: "float | None" = None
    low: "float | None" = None  # uniform
    high: "float | None" = None  # uniform
    shape_k: "float | None" = None  # gamma
    spike_delay: "float | None" = None  # bimodal
    spike_probability: "float | None" = None  # bimodal
    spike_jitter: "float | None" = None  # bimodal

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "NoiseSection":
        f = _Fields(data, "noise", scenario)
        model = f.take("model", "str", default="none")
        mean_delay = f.take("mean_delay", "float")
        level = f.take("level", "float")
        low = f.take("low", "float")
        high = f.take("high", "float")
        shape_k = f.take("shape_k", "float")
        spike_delay = f.take("spike_delay", "float")
        spike_probability = f.take("spike_probability", "float")
        spike_jitter = f.take("spike_jitter", "float")
        f.finish()

        _check_choice(model, NOISE_MODELS, "noise.model", scenario)
        allowed: dict[str, tuple[str, ...]] = {
            "none": (),
            "natural": (),
            "exponential": ("mean_delay", "level"),
            "gamma": ("mean_delay", "level", "shape_k"),
            "uniform": ("low", "high"),
            "bimodal": ("mean_delay", "level", "spike_delay",
                        "spike_probability", "spike_jitter"),
        }
        given = {k: v for k, v in (
            ("mean_delay", mean_delay), ("level", level), ("low", low),
            ("high", high), ("shape_k", shape_k), ("spike_delay", spike_delay),
            ("spike_probability", spike_probability),
            ("spike_jitter", spike_jitter),
        ) if v is not None}
        for key in given:
            if key not in allowed[model]:
                raise ScenarioError(
                    f"parameter does not apply to noise model {model!r} "
                    f"(allowed: {sorted(allowed[model]) or 'none'})",
                    path=f"noise.{key}", scenario=scenario,
                )
        if mean_delay is not None and level is not None:
            raise ScenarioError(
                "give either 'mean_delay' (seconds) or 'level' (relative E), "
                "not both",
                path="noise.mean_delay", scenario=scenario,
            )
        for key in ("mean_delay", "level", "low", "spike_delay",
                    "spike_jitter"):
            if given.get(key) is not None:
                _check_positive(given[key], f"noise.{key}", scenario,
                                allow_zero=True)
        if high is not None:
            _check_positive(high, "noise.high", scenario, allow_zero=True)
            if low is not None and high < low:
                raise ScenarioError(
                    f"must be >= noise.low ({low}), got {high}",
                    path="noise.high", scenario=scenario,
                )
        if shape_k is not None:
            _check_positive(shape_k, "noise.shape_k", scenario)
        if spike_probability is not None and not 0 <= spike_probability <= 1:
            raise ScenarioError(
                f"must be in [0, 1], got {spike_probability}",
                path="noise.spike_probability", scenario=scenario,
            )
        return cls(model=model, mean_delay=mean_delay, level=level, low=low,
                   high=high, shape_k=shape_k, spike_delay=spike_delay,
                   spike_probability=spike_probability,
                   spike_jitter=spike_jitter)

    def to_dict(self) -> dict:
        out: dict = {"model": self.model}
        for key in ("mean_delay", "level", "low", "high", "shape_k",
                    "spike_delay", "spike_probability", "spike_jitter"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class DelayEntry:
    """One explicit injected delay; duration in seconds or execution phases."""

    rank: int
    step: int = 0
    duration: "float | None" = None
    phases: "float | None" = None

    @classmethod
    def parse(cls, data: Any, path: str, scenario: str = "") -> "DelayEntry":
        f = _Fields(data, path, scenario)
        rank = f.take("rank", "int", required=True)
        step = f.take("step", "int", default=0)
        duration = f.take("duration", "float")
        phases = f.take("phases", "float")
        f.finish()
        if rank < 0:
            raise ScenarioError(f"rank must be >= 0, got {rank}",
                                path=f"{path}.rank", scenario=scenario)
        if step < 0:
            raise ScenarioError(f"step must be >= 0, got {step}",
                                path=f"{path}.step", scenario=scenario)
        if (duration is None) == (phases is None):
            raise ScenarioError(
                "give exactly one of 'duration' (seconds) or 'phases' "
                "(multiples of t_exec)",
                path=path, scenario=scenario,
            )
        if duration is not None:
            _check_positive(duration, f"{path}.duration", scenario)
        if phases is not None:
            _check_positive(phases, f"{path}.phases", scenario)
        return cls(rank=rank, step=step, duration=duration, phases=phases)

    def to_dict(self) -> dict:
        out: dict = {"rank": self.rank, "step": self.step}
        if self.duration is not None:
            out["duration"] = self.duration
        if self.phases is not None:
            out["phases"] = self.phases
        return out

    def seconds(self, t_exec: float) -> float:
        return self.duration if self.duration is not None else self.phases * t_exec


@dataclass(frozen=True)
class CampaignSection:
    """Sustained Poisson delay injection (:class:`repro.sim.campaign.DelayCampaign`).

    Durations are uniform in ``[duration_low, duration_high]`` seconds or
    ``[phases_low, phases_high]`` execution phases.
    """

    rate: float
    duration_low: "float | None" = None
    duration_high: "float | None" = None
    phases_low: "float | None" = None
    phases_high: "float | None" = None

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "CampaignSection":
        f = _Fields(data, "campaign", scenario)
        rate = f.take("rate", "float", required=True)
        duration_low = f.take("duration_low", "float")
        duration_high = f.take("duration_high", "float")
        phases_low = f.take("phases_low", "float")
        phases_high = f.take("phases_high", "float")
        f.finish()
        _check_positive(rate, "campaign.rate", scenario, allow_zero=True)
        in_seconds = duration_low is not None or duration_high is not None
        in_phases = phases_low is not None or phases_high is not None
        if in_seconds == in_phases:
            raise ScenarioError(
                "give the duration range either in seconds (duration_low/"
                "duration_high) or in execution phases (phases_low/"
                "phases_high)",
                path="campaign", scenario=scenario,
            )
        lo, hi, unit = (
            (duration_low, duration_high, "duration")
            if in_seconds else (phases_low, phases_high, "phases")
        )
        if lo is None or hi is None:
            raise ScenarioError(
                f"both '{unit}_low' and '{unit}_high' are required",
                path="campaign", scenario=scenario,
            )
        _check_positive(lo, f"campaign.{unit}_low", scenario, allow_zero=True)
        if hi < lo:
            raise ScenarioError(
                f"must be >= campaign.{unit}_low ({lo}), got {hi}",
                path=f"campaign.{unit}_high", scenario=scenario,
            )
        return cls(rate=rate, duration_low=duration_low,
                   duration_high=duration_high, phases_low=phases_low,
                   phases_high=phases_high)

    def to_dict(self) -> dict:
        out: dict = {"rate": self.rate}
        for key in ("duration_low", "duration_high", "phases_low",
                    "phases_high"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def bounds_seconds(self, t_exec: float) -> "tuple[float, float]":
        if self.duration_low is not None:
            return self.duration_low, self.duration_high
        return self.phases_low * t_exec, self.phases_high * t_exec


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a dotted spec path and its values."""

    path: str
    values: tuple

    @classmethod
    def parse(cls, data: Any, where: str, scenario: str = "") -> "SweepAxis":
        f = _Fields(data, where, scenario)
        path = f.take("path", "str", required=True)
        values = f.take("values", "list", required=True)
        f.finish()
        if not values:
            raise ScenarioError("axis has no values",
                                path=f"{where}.values", scenario=scenario)
        return cls(path=path, values=tuple(values))

    def to_dict(self) -> dict:
        return {"path": self.path, "values": list(self.values)}


@dataclass(frozen=True)
class SweepSection:
    """Turns the scenario into a grid: axes × replicates."""

    axes: "tuple[SweepAxis, ...]" = ()
    replicates: int = 1

    @classmethod
    def parse(cls, data: Any, scenario: str = "") -> "SweepSection":
        f = _Fields(data, "sweep", scenario)
        raw_axes = f.take("axes", "list", default=[])
        replicates = f.take("replicates", "int", default=1)
        f.finish()
        _check_positive(replicates, "sweep.replicates", scenario)
        axes = tuple(
            SweepAxis.parse(axis, f"sweep.axes[{i}]", scenario)
            for i, axis in enumerate(raw_axes)
        )
        paths = [a.path for a in axes]
        dupes = {p for p in paths if paths.count(p) > 1}
        if dupes:
            raise ScenarioError(
                f"duplicate axis path(s): {sorted(dupes)}",
                path="sweep.axes", scenario=scenario,
            )
        if not axes and replicates == 1:
            raise ScenarioError(
                "a sweep needs at least one axis or replicates > 1",
                path="sweep", scenario=scenario,
            )
        return cls(axes=axes, replicates=replicates)

    def to_dict(self) -> dict:
        out: dict = {}
        if self.axes:
            out["axes"] = [a.to_dict() for a in self.axes]
        if self.replicates != 1:
            out["replicates"] = self.replicates
        return out

    @property
    def size(self) -> int:
        n = self.replicates
        for axis in self.axes:
            n *= len(axis.values)
        return n


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment description."""

    name: str
    n_ranks: int
    n_steps: int
    description: str = ""
    seed: int = 0
    machine: MachineSection = field(default_factory=MachineSection)
    workload: WorkloadSection = field(default_factory=WorkloadSection)
    comm: CommSection = field(default_factory=CommSection)
    noise: NoiseSection = field(default_factory=NoiseSection)
    delays: "tuple[DelayEntry, ...]" = ()
    campaign: "CampaignSection | None" = None
    outputs: "tuple[str, ...]" = ("runtime",)
    sweep: "SweepSection | None" = None

    @classmethod
    def from_dict(cls, data: Any, name: "str | None" = None) -> "ScenarioSpec":
        """Parse and validate a plain-data scenario document.

        ``name`` overrides/supplies the scenario name (e.g. from the file
        stem) when the document has none.
        """
        scenario = name or (data.get("name", "") if isinstance(data, Mapping) else "")
        f = _Fields(data, "", scenario)
        doc_name = f.take("name", "str", default=name)
        description = f.take("description", "str", default="")
        n_ranks = f.take("n_ranks", "int", required=True)
        n_steps = f.take("n_steps", "int", required=True)
        seed = f.take("seed", "int", default=0)
        machine = MachineSection.parse(f.take("machine", "table"), scenario)
        workload = WorkloadSection.parse(f.take("workload", "table"), scenario)
        comm = CommSection.parse(f.take("comm", "table"), scenario)
        noise = NoiseSection.parse(f.take("noise", "table"), scenario)
        raw_delays = f.take("delays", "list", default=[])
        raw_campaign = f.take("campaign", "table")
        raw_outputs = f.take("outputs", "list", default=["runtime"])
        raw_sweep = f.take("sweep", "table")
        f.finish()

        if not doc_name:
            raise ScenarioError("scenario has no name (give 'name' in the "
                                "document or load it from a file)",
                                path="name")
        if n_ranks < 2:
            raise ScenarioError(f"must be >= 2, got {n_ranks}",
                                path="n_ranks", scenario=scenario)
        if n_steps < 1:
            raise ScenarioError(f"must be >= 1, got {n_steps}",
                                path="n_steps", scenario=scenario)

        delays = tuple(
            DelayEntry.parse(entry, f"delays[{i}]", scenario)
            for i, entry in enumerate(raw_delays)
        )
        campaign = (CampaignSection.parse(raw_campaign, scenario)
                    if raw_campaign is not None else None)
        outputs = []
        for i, out in enumerate(raw_outputs):
            if not isinstance(out, str):
                raise ScenarioError(
                    f"expected str, got {type(out).__name__}",
                    path=f"outputs[{i}]", scenario=scenario,
                )
            _check_choice(out, OUTPUT_KINDS, f"outputs[{i}]", scenario)
            outputs.append(out)
        if not outputs:
            raise ScenarioError("at least one output is required",
                                path="outputs", scenario=scenario)
        sweep = SweepSection.parse(raw_sweep, scenario) if raw_sweep is not None else None

        return cls(
            name=doc_name, description=description, n_ranks=n_ranks,
            n_steps=n_steps, seed=seed, machine=machine, workload=workload,
            comm=comm, noise=noise, delays=delays, campaign=campaign,
            outputs=tuple(outputs), sweep=sweep,
        )

    def to_dict(self) -> dict:
        """Plain-data form; round-trips through :meth:`from_dict`."""
        out: dict = {
            "name": self.name,
            "n_ranks": self.n_ranks,
            "n_steps": self.n_steps,
        }
        if self.description:
            out["description"] = self.description
        if self.seed:
            out["seed"] = self.seed
        out["machine"] = self.machine.to_dict()
        out["workload"] = self.workload.to_dict()
        out["comm"] = self.comm.to_dict()
        out["noise"] = self.noise.to_dict()
        if self.delays:
            out["delays"] = [d.to_dict() for d in self.delays]
        if self.campaign is not None:
            out["campaign"] = self.campaign.to_dict()
        out["outputs"] = list(self.outputs)
        if self.sweep is not None:
            out["sweep"] = self.sweep.to_dict()
        return out

    def without_sweep(self) -> "ScenarioSpec":
        """This scenario's base point (the sweep block dropped)."""
        if self.sweep is None:
            return self
        from dataclasses import replace

        return replace(self, sweep=None)


# ----------------------------------------------------------------------
# sweep override application
# ----------------------------------------------------------------------
def apply_overrides(data: Mapping, overrides: "Mapping[str, Any]") -> dict:
    """Apply ``{dotted.path: value}`` overrides to a scenario document.

    Paths address nested tables (``campaign.rate``, ``workload.threads``);
    missing intermediate tables are created.  The resulting document still
    goes through :meth:`ScenarioSpec.from_dict`, so an axis targeting a
    nonexistent field fails there with the exact offending path.
    """
    out = _deep_copy(data)
    for path, value in overrides.items():
        parts = path.split(".")
        if not all(parts):
            raise ScenarioError(f"malformed override path {path!r}",
                                path="sweep.axes")
        node = out
        for i, part in enumerate(parts[:-1]):
            nxt = node.get(part)
            if nxt is None:
                nxt = node[part] = {}
            elif not isinstance(nxt, dict):
                raise ScenarioError(
                    f"override path {path!r} descends into "
                    f"'{'.'.join(parts[: i + 1])}', which is not a table",
                    path="sweep.axes",
                )
            node = nxt
        node[parts[-1]] = value
    return out


def _deep_copy(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {k: _deep_copy(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_deep_copy(v) for v in value]
    return value
