"""Scenario validation errors.

Every rejection in the scenario layer raises :class:`ScenarioError` and
names the exact spec field (dotted path, e.g. ``delays.campaign.rate``)
that caused it, so a user editing a TOML file is pointed at the offending
line rather than at a Python traceback deep inside the compiler.
"""

from __future__ import annotations

__all__ = ["ScenarioError"]


class ScenarioError(ValueError):
    """A scenario spec failed validation or compilation.

    Parameters
    ----------
    message:
        Human-readable description of what is wrong and what would fix it.
    path:
        Dotted path of the offending field within the scenario document
        (e.g. ``"noise.mean_delay"``), or ``""`` for document-level
        problems.
    scenario:
        Name of the scenario, when known — distinguishes failures when
        validating a batch of files.
    """

    def __init__(self, message: str, path: str = "", scenario: str = "") -> None:
        self.message = message
        self.path = path
        self.scenario = scenario
        prefix = ""
        if scenario:
            prefix += f"scenario {scenario!r}: "
        if path:
            prefix += f"field '{path}': "
        super().__init__(prefix + message)

    def with_scenario(self, name: str) -> "ScenarioError":
        """A copy of this error tagged with the scenario name."""
        if self.scenario:
            return self
        return ScenarioError(self.message, path=self.path, scenario=name)
