"""Batched execution of scenario campaign tasks.

A scenario sweep expands into ``(overrides, replicate)`` grid tasks whose
replicates of one grid point differ *only* in their derived seed (the
campaign's delay draw and the noise matrix follow from it).  Simulating
each replicate with its own engine invocation wastes most of the wall
clock on fixed per-run overhead — compilation, program setup, and the
Python-level per-step loop over small per-rank arrays.

:class:`ScenarioTaskBatcher` plugs into
:func:`repro.runtime.executor.run_campaign` and collapses each contiguous
replicate block into **one** batched engine call: the scenario is
compiled once, each task's randomness is drawn from its own seed exactly
as in serial execution, and the B execution-time matrices run as a single
``[B, n_ranks, n_steps]`` invocation — the lockstep recurrence
(:func:`repro.sim.lockstep.simulate_lockstep_batch`), or one batched
propagation through a cached :class:`~repro.sim.engine.StaticDag`
(:func:`repro.sim.engine.simulate_dag_batch`) for forced-DAG blocks.
Because both batched propagations are elementwise along the batch axis,
every task's outputs — and therefore its content-addressed cache record —
are bit-identical to unbatched execution (guarded by
``tests/scenarios/test_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.runtime.executor import TaskBatcher
from repro.runtime.spec import RunSpec, hashable

__all__ = ["SCENARIO_TASK_FN", "ScenarioTaskBatcher"]

SCENARIO_TASK_FN = "repro.scenarios.tasks:scenario_task"


@dataclass(frozen=True)
class ScenarioTaskBatcher(TaskBatcher):
    """Group contiguous same-grid-point scenario tasks into engine batches.

    Parameters
    ----------
    max_block:
        Upper bound on tasks per batch, limiting the peak size of the
        stacked ``[B, n_ranks, n_steps]`` timing arrays.
    """

    max_block: int = 64

    def plan(self, specs: "Sequence[RunSpec]") -> "list[list[int]]":
        blocks: "list[list[int]]" = []
        current: "list[int]" = []
        current_sig: "tuple | None" = None
        for i, spec in enumerate(specs):
            sig = self._signature(spec)
            if (sig is not None and sig == current_sig
                    and len(current) < self.max_block):
                current.append(i)
            else:
                if current:
                    blocks.append(current)
                current, current_sig = [i], sig
        if current:
            blocks.append(current)
        return blocks

    @staticmethod
    def _signature(spec: RunSpec) -> "tuple | None":
        """Batch-compatibility key: everything but the replicate and seed.

        ``None`` marks a task that must never join a block (not a
        scenario task, or seedless).  Two tasks with equal signatures
        describe the same compiled scenario; only their derived seeds —
        and hence their random draws — differ.  ``RunSpec.params`` is
        already a canonically sorted tuple, so the filtered tuple itself
        is the key — no serialization needed.
        """
        if spec.fn != SCENARIO_TASK_FN or spec.seed is None:
            return None
        return tuple((k, hashable(v)) for k, v in spec.params
                     if k != "replicate")

    def execute(self, specs: "Sequence[RunSpec]") -> "list[Mapping]":
        """Run one replicate block through the batched engine path.

        Mirrors :func:`repro.scenarios.tasks.scenario_task` exactly —
        same document/override resolution, same compile, same per-seed
        randomness — so each returned value is bit-identical to the
        corresponding unbatched task call.
        """
        from repro.scenarios.compiler import compile_scenario
        from repro.scenarios.runner import run_scenario_batch
        from repro.scenarios.tasks import resolve_task_scenario

        first = specs[0].kwargs
        spec = resolve_task_scenario(first["scenario"], first.get("overrides"))
        compiled = compile_scenario(spec, engine=first.get("engine", "auto"))

        runs = run_scenario_batch(compiled, [s.seed for s in specs])
        return [
            {
                "outputs": run.data,
                "engine": run.compiled.engine,
                "n_campaign_delays": run.n_campaign_delays,
                "replicate": int(task.kwargs.get("replicate", 0)),
            }
            for task, run in zip(specs, runs)
        ]
