"""Scenario output requests: what a run reports back.

Each output kind maps a finished run (a :class:`~repro.core.timing.RunTiming`
plus its compiled scenario) to a JSON-able data dict — the form that the
campaign runtime's result store persists — and optionally a rendered text
section for the CLI report.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.desync import desync_onset, overlap_efficiency, skew_spread
from repro.analysis.histogram import NoiseHistogram
from repro.core.speed import silent_speed_for
from repro.core.timing import RunTiming
from repro.viz import render_histogram, render_timeline

__all__ = ["compute_outputs"]


def _runtime_output(compiled, timing: RunTiming, run) -> "tuple[dict, str | None]":
    data = {
        "total_runtime": timing.total_runtime(),
        "total_idle": timing.total_idle(),
        "mean_idle_per_rank": float(np.mean(timing.idle_by_rank())),
    }
    text = (
        f"total runtime : {data['total_runtime'] * 1e3:10.3f} ms\n"
        f"total idle    : {data['total_idle'] * 1e3:10.3f} rank-ms\n"
        f"idle per rank : {data['mean_idle_per_rank'] * 1e3:10.3f} ms (mean)"
    )
    return data, text


def _timeline_output(compiled, timing: RunTiming, run) -> "tuple[dict, str | None]":
    text = render_timeline(timing, width=90, base_exec=compiled.t_exec)
    return {"n_ranks": timing.n_ranks, "n_steps": timing.n_steps}, text


def _histogram_output(compiled, timing: RunTiming, run) -> "tuple[dict, str | None]":
    idle = timing.idle[timing.idle > 0]
    if idle.size == 0:
        return {"n_idle_periods": 0, "mean_idle": 0.0, "max_idle": 0.0}, \
            "(no idle periods — the run stayed in lockstep)"
    hist = NoiseHistogram.from_samples(idle, bin_width=max(float(idle.max()) / 40, 1e-9))
    data = {
        "n_idle_periods": int(idle.size),
        "mean_idle": float(idle.mean()),
        "max_idle": float(idle.max()),
        "p95_idle": float(np.percentile(idle, 95)),
    }
    return data, render_histogram(hist, unit=1e-3, unit_label="ms")


def _desync_output(compiled, timing: RunTiming, run) -> "tuple[dict, str | None]":
    spread = skew_spread(timing)
    onset = desync_onset(timing)
    data = {
        "final_skew": float(spread[-1]),
        "max_skew": float(spread.max()),
        "mean_skew": float(spread.mean()),
        "desync_onset_step": onset if onset is None else int(onset),
        "overlap_efficiency": float(overlap_efficiency(timing)),
    }
    text = (
        f"skew spread   : final {data['final_skew'] * 1e3:.3f} ms, "
        f"max {data['max_skew'] * 1e3:.3f} ms\n"
        f"desync onset  : "
        + ("never (stayed within T_exec/2)" if onset is None else f"step {onset}")
        + f"\noverlap eff.  : {data['overlap_efficiency']:+.2%}"
    )
    return data, text


def _wave_speed_output(compiled, timing: RunTiming, run) -> "tuple[dict, str | None]":
    from repro.core.speed import measure_speed

    source = compiled.cfg.delays[0].rank  # compile guarantees >= 1 delay
    prediction = silent_speed_for(
        compiled.cfg.pattern, compiled.resolved_protocol,
        compiled.t_exec, compiled.t_comm,
    )
    try:
        measured = measure_speed(timing, source=source)
    except ValueError as exc:
        return {
            "source": source,
            "measured_speed": None,
            "predicted_speed": prediction,
            "note": str(exc),
        }, f"wave speed: not measurable ({exc})"
    data = {
        "source": source,
        "measured_speed": measured.speed,
        "predicted_speed": prediction,
        "relative_error": abs(measured.speed - prediction) / prediction,
        "hops": measured.hops,
    }
    text = (
        f"measured wave speed : {measured.speed:10.1f} ranks/s "
        f"({measured.hops} hops)\n"
        f"Eq. 2 prediction    : {prediction:10.1f} ranks/s\n"
        f"relative error      : {data['relative_error']:10.2%}"
    )
    return data, text


_COMPUTERS = {
    "runtime": _runtime_output,
    "timeline": _timeline_output,
    "histogram": _histogram_output,
    "desync": _desync_output,
    "wave_speed": _wave_speed_output,
}


def compute_outputs(compiled, run) -> "tuple[dict, dict]":
    """Evaluate the scenario's requested outputs against a finished run.

    Returns ``(data, tables)``: ``data`` maps output kind to a JSON-able
    dict (store/persistence form); ``tables`` maps output kind to
    rendered text for the CLI report.
    """
    timing = RunTiming.of(run)
    data: dict = {}
    tables: dict = {}
    for kind in compiled.spec.outputs:
        values, text = _COMPUTERS[kind](compiled, timing, run)
        data[kind] = values
        if text is not None:
            tables[kind] = text
    return data, tables
