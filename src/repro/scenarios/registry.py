"""The bundled scenario registry.

Scenario files shipped with the package live in ``scenarios/data/``; the
registry lists them, loads them by name, and resolves a CLI argument that
may be either a bundled name or a path to a user's own file.  Growing the
scenario space is a data change: drop a ``.toml`` file into the data
directory (or point the CLI at one anywhere on disk) — no code edits.
"""

from __future__ import annotations

from pathlib import Path

from repro.scenarios.errors import ScenarioError
from repro.scenarios.loader import load_scenario_file
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "BUNDLED_SCENARIO_DIR",
    "bundled_scenario_names",
    "load_bundled_scenario",
    "iter_bundled_scenarios",
    "resolve_scenario",
]

BUNDLED_SCENARIO_DIR = Path(__file__).parent / "data"


def bundled_scenario_names() -> "list[str]":
    """Sorted, deduplicated names of all bundled scenarios (file stems).

    A ``.toml`` and a ``.json`` sharing a stem count as one scenario
    (the TOML wins at load time, matching :func:`load_bundled_scenario`).
    """
    return sorted({
        p.stem
        for pattern in ("*.toml", "*.json")
        for p in BUNDLED_SCENARIO_DIR.glob(pattern)
    })


def load_bundled_scenario(name: str) -> ScenarioSpec:
    """Load one bundled scenario by name."""
    for suffix in (".toml", ".json"):
        path = BUNDLED_SCENARIO_DIR / f"{name}{suffix}"
        if path.exists():
            return load_scenario_file(path)
    raise ScenarioError(
        f"unknown bundled scenario {name!r}; "
        f"available: {bundled_scenario_names()}"
    )


def iter_bundled_scenarios() -> "list[ScenarioSpec]":
    """Load every bundled scenario (validated on load)."""
    return [load_bundled_scenario(name) for name in bundled_scenario_names()]


def resolve_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a CLI argument: bundled name, or path to a scenario file."""
    candidate = Path(name_or_path)
    if candidate.suffix.lower() in (".toml", ".json") or candidate.exists():
        return load_scenario_file(candidate)
    return load_bundled_scenario(name_or_path)
