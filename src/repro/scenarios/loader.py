"""Loading scenario documents from TOML / JSON files.

TOML is the native authoring format (tables map 1:1 onto spec sections);
JSON is accepted for machine-generated scenarios.  The file stem supplies
the scenario name when the document has none, so a directory of scenario
files needs no redundant ``name =`` lines.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Any

from repro.scenarios.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["load_scenario_file", "parse_scenario_text"]


def parse_scenario_text(text: str, fmt: str = "toml",
                        name: "str | None" = None) -> ScenarioSpec:
    """Parse a scenario document from text (``fmt`` = ``toml`` | ``json``)."""
    if fmt == "toml":
        try:
            data: Any = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML: {exc}", scenario=name or "") from exc
    elif fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON: {exc}", scenario=name or "") from exc
    else:
        raise ScenarioError(f"unknown scenario format {fmt!r}; use 'toml' or 'json'")
    return ScenarioSpec.from_dict(data, name=name)


def load_scenario_file(path: "str | Path") -> ScenarioSpec:
    """Load one scenario file (``.toml`` or ``.json``).

    Raises
    ------
    ScenarioError
        On unreadable files, malformed markup, or spec validation
        failures — always naming the file and (where known) the offending
        field path.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ScenarioError(
            f"unsupported scenario file type {path.suffix!r} ({path}); "
            "use .toml or .json"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    try:
        return parse_scenario_text(text, fmt=suffix[1:], name=path.stem)
    except ScenarioError as exc:
        raise ScenarioError(f"{exc.message} (file: {path})", path=exc.path,
                            scenario=exc.scenario or path.stem) from exc
