"""Fine-grained noise generators.

The paper distinguishes *noise* (fine-grained, microsecond-scale, random)
from *delays* (long, one-off) — Sec. I-A.  This module models the former.
The central generator is :class:`ExponentialNoise`, matching Eq. 3:

.. math::

    f\\left(\\frac{T^{delay}_{exec}}{T_{exec}}; \\lambda\\right)
        = \\lambda \\exp\\left(-\\lambda \\frac{T^{delay}_{exec}}{T_{exec}}\\right)

parameterized by ``E = 1/lambda``, the *mean relative delay per execution
period*.  :class:`BimodalNoise` reproduces the Omni-Path SMT-off histogram
of Fig. 3(b) with its second peak near 660 µs.

All generators are deterministic given a :class:`numpy.random.Generator` and
produce *extra* execution time in **seconds**, to be added to the pure phase
duration.  Extrinsic (system) and intrinsic (application) noise are
observationally equivalent (Sec. III-B), so a single abstraction serves
both roles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "NoiseModel",
    "NoNoise",
    "ExponentialNoise",
    "BimodalNoise",
    "UniformNoise",
    "GammaNoise",
    "TraceNoise",
    "exponential_for_level",
]


class NoiseModel(ABC):
    """Interface: per-execution-phase extra delay, in seconds."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        """Draw an array of per-phase delays (seconds, all >= 0)."""

    @abstractmethod
    def mean(self) -> float:
        """Expected delay per phase in seconds."""

    def relative_level(self, t_exec: float) -> float:
        """Noise level ``E`` as used in the paper: mean delay / T_exec."""
        if t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {t_exec}")
        return self.mean() / t_exec


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """The silent system: zero noise. Baseline for Eq. 2 validation."""

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return np.zeros(shape)

    def mean(self) -> float:
        return 0.0


@dataclass(frozen=True)
class ExponentialNoise(NoiseModel):
    """Exponentially distributed noise (Eq. 3 of the paper).

    Parameters
    ----------
    mean_delay:
        Mean extra delay per execution phase, in seconds.  For a phase of
        length ``T_exec`` and target relative level ``E``, use
        ``mean_delay = E * T_exec`` (or :func:`exponential_for_level`).
    """

    mean_delay: float

    def __post_init__(self) -> None:
        if self.mean_delay < 0:
            raise ValueError(f"mean_delay must be >= 0, got {self.mean_delay}")

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        if self.mean_delay == 0.0:
            return np.zeros(shape)
        return rng.exponential(self.mean_delay, size=shape)

    def mean(self) -> float:
        return self.mean_delay


def exponential_for_level(E: float, t_exec: float) -> ExponentialNoise:
    """Exponential noise with relative level ``E`` for phases of ``t_exec`` s.

    ``E`` is the paper's noise parameter: ``E = lambda^-1`` = mean relative
    delay per execution period (e.g. ``E=0.25`` for the 25 % case of
    Fig. 9(c)).
    """
    if E < 0:
        raise ValueError(f"E must be >= 0, got {E}")
    if t_exec <= 0:
        raise ValueError(f"t_exec must be > 0, got {t_exec}")
    return ExponentialNoise(mean_delay=E * t_exec)


@dataclass(frozen=True)
class BimodalNoise(NoiseModel):
    """Two-component noise mixture.

    Models the Omni-Path SMT-off histogram of Fig. 3(b): a dominant
    fine-grained component plus a rare, much longer second mode (driver
    activity, ~660 µs on Meggie).

    Parameters
    ----------
    base:
        Noise model for the common component.
    spike_delay:
        Mean duration of the rare long component, in seconds.
    spike_probability:
        Probability that any given phase is hit by the long component.
    spike_jitter:
        Relative standard deviation of the long component (a truncated
        normal around ``spike_delay``).
    """

    base: NoiseModel = field(default_factory=lambda: ExponentialNoise(2.8e-6))
    spike_delay: float = 660e-6
    spike_probability: float = 0.01
    spike_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.spike_delay < 0:
            raise ValueError(f"spike_delay must be >= 0, got {self.spike_delay}")
        if not 0 <= self.spike_probability <= 1:
            raise ValueError(
                f"spike_probability must be in [0, 1], got {self.spike_probability}"
            )
        if self.spike_jitter < 0:
            raise ValueError(f"spike_jitter must be >= 0, got {self.spike_jitter}")

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        out = self.base.sample(rng, shape)
        if self.spike_probability > 0 and self.spike_delay > 0:
            hits = rng.random(shape) < self.spike_probability
            spikes = rng.normal(self.spike_delay, self.spike_jitter * self.spike_delay, shape)
            np.clip(spikes, 0.0, None, out=spikes)
            out = out + np.where(hits, spikes, 0.0)
        return out

    def mean(self) -> float:
        return self.base.mean() + self.spike_probability * self.spike_delay


@dataclass(frozen=True)
class UniformNoise(NoiseModel):
    """Uniformly distributed noise on ``[low, high]`` seconds."""

    low: float = 0.0
    high: float = 5e-6

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError(f"low must be >= 0, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got high={self.high} < low={self.low}")

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=shape)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class GammaNoise(NoiseModel):
    """Gamma-distributed noise — heavier/lighter tails than exponential.

    With ``shape_k=1`` this degenerates to :class:`ExponentialNoise`; the
    ablation benches use it to probe whether the paper's decay-vs-E
    correlation is specific to the exponential distribution.
    """

    mean_delay: float = 2.4e-6
    shape_k: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_delay < 0:
            raise ValueError(f"mean_delay must be >= 0, got {self.mean_delay}")
        if self.shape_k <= 0:
            raise ValueError(f"shape_k must be > 0, got {self.shape_k}")

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        if self.mean_delay == 0.0:
            return np.zeros(shape)
        scale = self.mean_delay / self.shape_k
        return rng.gamma(self.shape_k, scale, size=shape)

    def mean(self) -> float:
        return self.mean_delay


@dataclass(frozen=True)
class TraceNoise(NoiseModel):
    """Noise replayed (with replacement) from measured samples.

    This is how a histogram recorded on a real machine (Fig. 3) can be fed
    back into the simulator.  Samples are drawn i.i.d. from the empirical
    distribution.
    """

    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) == 0:
            raise ValueError("TraceNoise needs at least one sample")
        if any(s < 0 for s in self.samples):
            raise ValueError("TraceNoise samples must be >= 0")

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "TraceNoise":
        return cls(samples=tuple(float(x) for x in np.asarray(arr).ravel()))

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        arr = np.asarray(self.samples)
        idx = rng.integers(0, arr.size, size=shape)
        return arr[idx]

    def mean(self) -> float:
        return float(np.mean(self.samples))
