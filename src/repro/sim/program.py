"""Construction of bulk-synchronous message-passing programs.

The paper's experiments all run the same program skeleton (Sec. IV): each
rank alternates a purely compute-bound *execution phase* with a
communication phase implemented as ``MPI_Isend``/``MPI_Irecv`` to all
neighbors followed by ``MPI_Waitall``.  This module builds per-rank
operation sequences for every combination the paper scans:

- **direction** — unidirectional (each rank sends "up" and receives from
  "down") or bidirectional (full exchange with every neighbor),
- **distance** ``d`` — the largest distance to any communication partner
  (Sec. IV-C; Fig. 7 uses d = 2),
- **boundaries** — open (disturbances run out at the chain ends) or
  periodic (a closed ring; waves wrap around).

Execution-phase durations are provided as a dense ``[n_ranks, n_steps]``
array assembled by :func:`build_exec_times` from the base workload time,
a noise model, and the injected one-off delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum

import numpy as np

from repro.sim.delay import DelaySpec
from repro.sim.noise import NoiseModel, NoNoise

__all__ = [
    "OpKind",
    "Op",
    "Direction",
    "CommPattern",
    "Program",
    "LockstepConfig",
    "build_exec_times",
    "build_lockstep_program",
]


class OpKind(IntEnum):
    """Kinds of per-rank operations the engine understands."""

    COMP = 0
    ISEND = 1
    IRECV = 2
    WAITALL = 3


@dataclass(slots=True, frozen=True)
class Op:
    """One operation in a rank's program.

    Fields are kind-dependent: ``duration`` for ``COMP``; ``peer``/``size``/
    ``tag`` for ``ISEND``/``IRECV``.  ``step`` records the bulk-synchronous
    time step the operation belongs to (provenance for analysis).
    """

    kind: OpKind
    duration: float = 0.0
    peer: int = -1
    size: int = 0
    tag: int = 0
    step: int = -1

    def __post_init__(self) -> None:
        if self.kind == OpKind.COMP and self.duration < 0:
            raise ValueError(f"COMP duration must be >= 0, got {self.duration}")
        if self.kind in (OpKind.ISEND, OpKind.IRECV):
            if self.peer < 0:
                raise ValueError(f"{self.kind.name} needs a peer rank, got {self.peer}")
            if self.size < 0:
                raise ValueError(f"message size must be >= 0, got {self.size}")


class Direction(Enum):
    """Communication direction along the rank chain."""

    UNIDIRECTIONAL = "uni"
    BIDIRECTIONAL = "bi"


@dataclass(frozen=True)
class CommPattern:
    """Point-to-point neighbor-communication pattern along a rank chain.

    Parameters
    ----------
    direction:
        ``UNIDIRECTIONAL``: rank ``i`` sends to ``i+1..i+d`` and receives
        from ``i-1..i-d``.  ``BIDIRECTIONAL``: sends to and receives from
        all of ``i±1..i±d``.
    distance:
        Neighbor distance ``d`` >= 1 (the ``d`` of Eq. 2).
    periodic:
        Closed ring (True) or open chain (False).
    """

    direction: Direction = Direction.UNIDIRECTIONAL
    distance: int = 1
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise ValueError(f"distance must be >= 1, got {self.distance}")

    # ------------------------------------------------------------------
    def send_targets(self, rank: int, n_ranks: int) -> list[int]:
        """Ranks that ``rank`` sends to in one communication phase."""
        return self._partners(rank, n_ranks, sending=True)

    def recv_sources(self, rank: int, n_ranks: int) -> list[int]:
        """Ranks that ``rank`` receives from in one communication phase."""
        return self._partners(rank, n_ranks, sending=False)

    def _partners(self, rank: int, n_ranks: int, sending: bool) -> list[int]:
        if not 0 <= rank < n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {n_ranks})")
        offsets: list[int] = []
        for k in range(1, self.distance + 1):
            if self.direction == Direction.BIDIRECTIONAL:
                offsets.extend((+k, -k))
            else:
                offsets.append(+k if sending else -k)
        # On small periodic rings different offsets can alias to the same
        # partner (or to the rank itself); those are dropped, so each pair
        # exchanges at most one message per direction per phase.
        partners: list[int] = []
        seen: set[int] = set()
        for off in offsets:
            p = rank + off
            if self.periodic:
                p %= n_ranks
            elif not 0 <= p < n_ranks:
                continue
            if p == rank or p in seen:
                continue
            seen.add(p)
            partners.append(p)
        return partners


@dataclass
class Program:
    """A complete per-rank operation schedule plus its metadata."""

    ops: list[list[Op]]
    n_steps: int
    meta: dict = field(default_factory=dict)

    @property
    def n_ranks(self) -> int:
        return len(self.ops)

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("program needs at least one rank")
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {self.n_steps}")

    def op_count(self) -> int:
        """Total number of operations across all ranks."""
        return sum(len(rank_ops) for rank_ops in self.ops)


@dataclass(frozen=True)
class LockstepConfig:
    """Parameters of the standard bulk-synchronous experiment.

    Defaults follow the paper's standard setting (Sec. IV): 3 ms
    compute-bound execution phases and 8192-byte messages.
    """

    n_ranks: int
    n_steps: int
    t_exec: float = 3e-3
    msg_size: int = 8192
    pattern: CommPattern = field(default_factory=CommPattern)
    noise: NoiseModel = field(default_factory=NoNoise)
    delays: tuple[DelaySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError(f"n_ranks must be >= 2, got {self.n_ranks}")
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {self.t_exec}")
        if self.msg_size < 0:
            raise ValueError(f"msg_size must be >= 0, got {self.msg_size}")
        for spec in self.delays:
            if spec.rank >= self.n_ranks:
                raise ValueError(f"delay rank {spec.rank} >= n_ranks {self.n_ranks}")
            if spec.step >= self.n_steps:
                raise ValueError(f"delay step {spec.step} >= n_steps {self.n_steps}")


def build_exec_times(cfg: LockstepConfig, rng: np.random.Generator | None = None) -> np.ndarray:
    """Per-rank, per-step execution-phase durations including noise + delays.

    Returns a ``[n_ranks, n_steps]`` array of seconds:
    ``t_exec + noise_sample + injected_delay``.
    """
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    times = np.full((cfg.n_ranks, cfg.n_steps), cfg.t_exec, dtype=float)
    times += cfg.noise.sample(rng, (cfg.n_ranks, cfg.n_steps))
    for spec in cfg.delays:
        times[spec.rank, spec.step] += spec.duration
    return times


def build_lockstep_program(
    cfg: LockstepConfig,
    exec_times: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> Program:
    """Build the bulk-synchronous program for a :class:`LockstepConfig`.

    Each step of each rank is ``COMP; IRECV*; ISEND*; WAITALL``.  Receives
    are posted before sends, matching the common real-world idiom (and the
    paper's ``Isend/Irecv/Waitall`` pattern — the relative order of the
    nonblocking calls does not change the semantics, only the Waitall
    matters).

    Parameters
    ----------
    cfg:
        Experiment parameters.
    exec_times:
        Optional pre-built ``[n_ranks, n_steps]`` duration array (e.g. from
        :func:`build_exec_times` or a workload model).  Built from ``cfg``
        if omitted.
    rng:
        Random generator for the noise draw when ``exec_times`` is omitted.
    """
    if exec_times is None:
        exec_times = build_exec_times(cfg, rng)
    exec_times = np.asarray(exec_times, dtype=float)
    if exec_times.shape != (cfg.n_ranks, cfg.n_steps):
        raise ValueError(
            f"exec_times shape {exec_times.shape} != "
            f"({cfg.n_ranks}, {cfg.n_steps})"
        )
    if np.any(exec_times < 0):
        raise ValueError("exec_times must be non-negative")

    ops: list[list[Op]] = []
    for rank in range(cfg.n_ranks):
        sends = cfg.pattern.send_targets(rank, cfg.n_ranks)
        recvs = cfg.pattern.recv_sources(rank, cfg.n_ranks)
        rank_ops: list[Op] = []
        for step in range(cfg.n_steps):
            rank_ops.append(
                Op(kind=OpKind.COMP, duration=float(exec_times[rank, step]), step=step)
            )
            for src in recvs:
                rank_ops.append(
                    Op(kind=OpKind.IRECV, peer=src, size=cfg.msg_size, tag=step, step=step)
                )
            for dst in sends:
                rank_ops.append(
                    Op(kind=OpKind.ISEND, peer=dst, size=cfg.msg_size, tag=step, step=step)
                )
            rank_ops.append(Op(kind=OpKind.WAITALL, step=step))
        ops.append(rank_ops)

    return Program(
        ops=ops,
        n_steps=cfg.n_steps,
        meta={
            "t_exec": cfg.t_exec,
            "msg_size": cfg.msg_size,
            "pattern": cfg.pattern,
            "noise_mean": cfg.noise.mean(),
            "delays": cfg.delays,
            "seed": cfg.seed,
        },
    )
