"""Trace records and timing matrices.

The simulator emits a :class:`Trace` — a flat list of :class:`OpRecord`
entries (one per executed operation) plus metadata.  The analysis layer in
:mod:`repro.core` works almost exclusively on three dense matrices derived
from the trace:

- ``exec_end_matrix[rank, step]`` — wall-clock time at which the execution
  phase of a step finished,
- ``completion_matrix[rank, step]`` — wall-clock time at which the step's
  ``Waitall`` returned (the rank is ready for the next step),
- ``idle_matrix[rank, step]`` — time spent inside the wait, i.e. the red
  bars of Figs. 4–7 and 9 ("sum of communication time and communication
  delays").

This mirrors what a real MPI trace collector (the paper uses Intel Trace
Analyzer and Collector with ``MPI_Wait`` timing) would deliver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.sim.program import OpKind

__all__ = ["OpRecord", "Trace"]


@dataclass(slots=True, frozen=True)
class OpRecord:
    """One executed operation on one rank.

    ``start``/``end`` are wall-clock seconds.  For a ``WAITALL`` record,
    ``start`` is when the rank entered the wait (all local work done) and
    ``end`` when the last outstanding request completed — their difference
    is the idle/communication time of that step.
    """

    rank: int
    step: int
    kind: OpKind
    start: float
    end: float
    peer: int = -1
    size: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Complete record of one simulated program run."""

    n_ranks: int
    n_steps: int
    records: list[OpRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {self.n_steps}")

    # ------------------------------------------------------------------
    # columnar construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrices(
        cls,
        exec_start: np.ndarray,
        exec_end: np.ndarray,
        wait_start: np.ndarray,
        completion: np.ndarray,
        meta: "dict | None" = None,
    ) -> "Trace":
        """Materialize COMP + WAITALL records from dense timing matrices.

        The inverse of the matrix accessors for the common one-phase-per-
        step shape: each ``[rank, step]`` cell becomes one ``COMP`` record
        (``exec_start .. exec_end``) and one ``WAITALL`` record
        (``wait_start .. completion``).  This is how the columnar engine
        results (:class:`repro.sim.lockstep.LockstepResult`,
        :class:`repro.sim.engine.DagResult`) build traces lazily — the
        per-message ISEND/IRECV records are not represented.
        """
        n_ranks, n_steps = np.asarray(exec_end).shape
        records: list[OpRecord] = []
        for rank in range(n_ranks):
            for step in range(n_steps):
                records.append(
                    OpRecord(
                        rank=rank,
                        step=step,
                        kind=OpKind.COMP,
                        start=float(exec_start[rank, step]),
                        end=float(exec_end[rank, step]),
                    )
                )
                records.append(
                    OpRecord(
                        rank=rank,
                        step=step,
                        kind=OpKind.WAITALL,
                        start=float(wait_start[rank, step]),
                        end=float(completion[rank, step]),
                    )
                )
        return cls(
            n_ranks=n_ranks,
            n_steps=n_steps,
            records=records,
            meta=dict(meta or {}),
        )

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def by_rank(self, rank: int) -> list[OpRecord]:
        """All records of one rank, in program order (sorted by start)."""
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")
        recs = [r for r in self.records if r.rank == rank]
        recs.sort(key=lambda r: (r.start, r.end))
        return recs

    def of_kind(self, kind: OpKind) -> Iterator[OpRecord]:
        """All records of a given operation kind."""
        return (r for r in self.records if r.kind == kind)

    # ------------------------------------------------------------------
    # dense matrices
    # ------------------------------------------------------------------
    def _matrix(self, kind: OpKind, attr: str, reduce: str = "last") -> np.ndarray:
        """Dense per-(rank, step) matrix of one attribute.

        ``reduce`` handles steps with multiple records of the same kind
        (e.g. the per-round Waitalls of a collective): "last" keeps the
        final value, "max"/"min" reduce, "sum" accumulates durations.
        """
        out = np.full((self.n_ranks, self.n_steps), np.nan)
        for r in self.records:
            if r.kind != kind or not 0 <= r.step < self.n_steps:
                continue
            val = getattr(r, attr)
            cur = out[r.rank, r.step]
            if np.isnan(cur) or reduce == "last":
                out[r.rank, r.step] = val
            elif reduce == "max":
                out[r.rank, r.step] = max(cur, val)
            elif reduce == "min":
                out[r.rank, r.step] = min(cur, val)
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown reduce {reduce!r}")
        return out

    def exec_end_matrix(self) -> np.ndarray:
        """``[rank, step]`` wall-clock end of the (last) execution phase."""
        return self._matrix(OpKind.COMP, "end", reduce="max")

    def exec_start_matrix(self) -> np.ndarray:
        """``[rank, step]`` wall-clock start of the (first) execution phase."""
        return self._matrix(OpKind.COMP, "start", reduce="min")

    def completion_matrix(self) -> np.ndarray:
        """``[rank, step]`` wall-clock end of the step's last Waitall."""
        return self._matrix(OpKind.WAITALL, "end", reduce="max")

    def idle_matrix(self) -> np.ndarray:
        """``[rank, step]`` seconds spent inside the step's Waitall(s).

        Steps with several Waitalls (collective rounds) accumulate.
        """
        out = np.zeros((self.n_ranks, self.n_steps))
        for r in self.records:
            if r.kind == OpKind.WAITALL and 0 <= r.step < self.n_steps:
                out[r.rank, r.step] += r.end - r.start
        return out

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def total_runtime(self) -> float:
        """Wall-clock time from 0 to the last completed operation."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records)

    def rank_runtime(self, rank: int) -> float:
        """Wall-clock completion time of one rank."""
        recs = self.by_rank(rank)
        return recs[-1].end if recs else 0.0

    def total_idle_time(self) -> float:
        """Sum of all Waitall durations over all ranks and steps."""
        return float(sum(r.duration for r in self.of_kind(OpKind.WAITALL)))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Invariants: per-rank records do not overlap in time, times are
        non-negative and finite, every record has ``end >= start``, and
        ranks/steps are in range.
        """
        for r in self.records:
            if not 0 <= r.rank < self.n_ranks:
                raise ValueError(f"record with out-of-range rank {r.rank}")
            if r.end < r.start:
                raise ValueError(
                    f"record with end < start on rank {r.rank} step {r.step}: "
                    f"{r.start} .. {r.end}"
                )
            if r.start < 0 or not np.isfinite(r.end):
                raise ValueError(
                    f"record with invalid times on rank {r.rank} step {r.step}: "
                    f"{r.start} .. {r.end}"
                )
        for rank in range(self.n_ranks):
            recs = self.by_rank(rank)
            for a, b in zip(recs, recs[1:]):
                if b.start < a.end - 1e-12:
                    raise ValueError(
                        f"overlapping records on rank {rank}: "
                        f"[{a.start}, {a.end}] ({a.kind.name} step {a.step}) vs "
                        f"[{b.start}, {b.end}] ({b.kind.name} step {b.step})"
                    )
