"""MPI point-to-point semantics: protocols and message matching.

The propagation behaviour of idle waves hinges on one MPI implementation
detail (Sec. II-C1): short messages use the **eager** protocol (the sender
buffers and proceeds — no handshake, no backward dependency), while large
messages use **rendezvous** (sender and receiver synchronize before the
transfer — the sender *cannot* complete until the receiver arrives, which
makes delays propagate *against* the message direction, Fig. 5(e,f)).

This module provides the protocol selection rule (the *eager limit*) and a
deterministic message matcher: the *n*-th send from rank ``i`` to rank ``j``
with tag ``t`` matches the *n*-th receive posted at ``j`` for source ``i``
and tag ``t`` — MPI's non-overtaking guarantee for our deterministic
programs.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from enum import Enum

__all__ = ["Protocol", "select_protocol", "MessageMatcher", "MatchedMessage", "DEFAULT_EAGER_LIMIT"]

#: Default eager limit in bytes.  The paper's Fig. 5 states the limit as
#: "16384 doubles, i.e. 131072 B" (Intel MPI inter-node default).
DEFAULT_EAGER_LIMIT: int = 131072


class Protocol(Enum):
    """Message transfer protocol."""

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"
    AUTO = "auto"


def select_protocol(size_bytes: int, eager_limit: int = DEFAULT_EAGER_LIMIT,
                    forced: Protocol = Protocol.AUTO) -> Protocol:
    """Resolve the protocol used for a message of ``size_bytes``.

    ``forced`` overrides the size-based rule (for controlled experiments);
    with ``Protocol.AUTO`` messages up to and including the eager limit go
    eager, larger ones rendezvous.
    """
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0, got {size_bytes}")
    if eager_limit < 0:
        raise ValueError(f"eager_limit must be >= 0, got {eager_limit}")
    if forced != Protocol.AUTO:
        return forced
    return Protocol.EAGER if size_bytes <= eager_limit else Protocol.RENDEZVOUS


@dataclass(slots=True, frozen=True)
class MatchedMessage:
    """A matched (send, recv) pair, identified by op indices in the DAG."""

    src: int
    dst: int
    tag: int
    size: int
    send_node: int
    recv_node: int


class MessageMatcher:
    """FIFO matching of sends to receives per (src, dst, tag) channel.

    The engine registers every ``ISEND`` and ``IRECV`` as it walks the
    per-rank programs; whenever both sides of a channel have an outstanding
    entry, a :class:`MatchedMessage` is produced.  At the end of program
    construction, :meth:`finish` verifies that no operation was left
    unmatched (an unmatched op means the program would deadlock or leak a
    request — a bug in program construction).
    """

    def __init__(self) -> None:
        self._pending_sends: dict[tuple[int, int, int], deque[tuple[int, int]]] = defaultdict(deque)
        self._pending_recvs: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
        self.matches: list[MatchedMessage] = []

    def add_send(self, src: int, dst: int, tag: int, size: int, node: int) -> MatchedMessage | None:
        """Register a send; returns the match if a recv was already waiting."""
        key = (src, dst, tag)
        if self._pending_recvs[key]:
            recv_node = self._pending_recvs[key].popleft()
            m = MatchedMessage(src, dst, tag, size, node, recv_node)
            self.matches.append(m)
            return m
        self._pending_sends[key].append((node, size))
        return None

    def add_recv(self, src: int, dst: int, tag: int, node: int) -> MatchedMessage | None:
        """Register a receive; returns the match if a send was already waiting."""
        key = (src, dst, tag)
        if self._pending_sends[key]:
            send_node, size = self._pending_sends[key].popleft()
            m = MatchedMessage(src, dst, tag, size, send_node, node)
            self.matches.append(m)
            return m
        self._pending_recvs[key].append(node)
        return None

    def finish(self) -> list[MatchedMessage]:
        """Verify completeness and return all matches.

        Raises
        ------
        ValueError
            If any send or receive is left unmatched.
        """
        unmatched_sends = {k: len(v) for k, v in self._pending_sends.items() if v}
        unmatched_recvs = {k: len(v) for k, v in self._pending_recvs.items() if v}
        if unmatched_sends or unmatched_recvs:
            raise ValueError(
                "program has unmatched point-to-point operations: "
                f"sends={unmatched_sends} recvs={unmatched_recvs}"
            )
        return self.matches
