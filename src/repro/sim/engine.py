"""The authoritative static-DAG discrete-event engine.

Bulk-synchronous programs with deterministic message matching form a static
dependency DAG: per-rank operations are chained in program order, and each
matched message adds cross-rank edges whose shape depends on the protocol:

- **eager** — the send completes locally (no backward edge); the receive
  request completes at ``max(message arrival, recv posted)``.  Modelled as
  a virtual *completion* node with edges from the ``ISEND`` (weighted by
  the flight time) and the ``IRECV``.
- **rendezvous** — the transfer starts only when *both* the sender and the
  receiver have arrived; both requests complete at the end of the transfer.
  Modelled as a virtual *transfer* node (duration = transfer time) feeding
  both ranks' ``WAITALL``.  This is the mechanism by which delays propagate
  against the message direction (Fig. 5(e,f)).
- **bidirectional rendezvous progress coupling** — the paper measures that
  idle waves travel *twice* as fast under bidirectional rendezvous
  communication (σ = 2 in Eq. 2): "two neighbors of the delayed process are
  blocked in either direction".  We model this as a one-hop coupling rule:
  when a pair of ranks exchanges rendezvous messages in *both* directions
  within a step, the pair's transfers additionally wait for the posting
  times of both endpoints' other same-step rendezvous partners.  The rule
  uses posting (not completion) times, so it reaches exactly one extra hop
  and cannot cascade; it reproduces the measured σ = 2 (and σ·d for d > 1)
  while leaving unidirectional and eager traffic untouched.

Completion times are computed by Kahn-style topological propagation:
``end(n) = max over predecessors p of (end(p) + edge_delay) + duration(n)``.
The result is an exact event-driven simulation of the program under the
given network model — the same modeling approach as LogGOPSim, which the
paper uses as its simulated comparator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.mpi import DEFAULT_EAGER_LIMIT, MessageMatcher, Protocol, select_protocol
from repro.sim.network import NetworkModel, UniformNetwork
from repro.sim.program import OpKind, Program
from repro.sim.topology import CommDomain, ProcessMapping
from repro.sim.trace import OpRecord, Trace

__all__ = ["SimConfig", "simulate"]


@dataclass(frozen=True)
class SimConfig:
    """Everything the engine needs besides the program itself.

    Parameters
    ----------
    network:
        Transfer-time model.
    mapping:
        Rank placement, used to classify each message's
        :class:`~repro.sim.topology.CommDomain`.  When omitted, every pair
        of distinct ranks is treated as inter-node (the "one process per
        node" configuration of Figs. 4, 5 and 7).
    eager_limit:
        Protocol switch point in bytes (used when ``protocol`` is AUTO).
    protocol:
        Force eager or rendezvous for *all* messages, or AUTO for the
        size-based rule.
    """

    network: NetworkModel = field(default_factory=UniformNetwork)
    mapping: ProcessMapping | None = None
    eager_limit: int = DEFAULT_EAGER_LIMIT
    protocol: Protocol = Protocol.AUTO

    def domain(self, a: int, b: int) -> CommDomain:
        if self.mapping is not None:
            return self.mapping.domain(a, b)
        return CommDomain.SELF if a == b else CommDomain.INTER_NODE


class _DagBuilder:
    """Accumulates nodes and edges, then propagates completion times."""

    __slots__ = ("duration", "succs", "indeg", "ready", "prog_pred")

    def __init__(self) -> None:
        self.duration: list[float] = []
        self.succs: list[list[tuple[int, float]]] = []
        self.indeg: list[int] = []
        self.ready: list[float] = []
        self.prog_pred: list[int] = []

    def add_node(self, duration: float, prog_pred: int = -1) -> int:
        node = len(self.duration)
        self.duration.append(duration)
        self.succs.append([])
        self.indeg.append(0)
        self.ready.append(0.0)
        self.prog_pred.append(prog_pred)
        if prog_pred >= 0:
            self.add_edge(prog_pred, node, 0.0)
        return node

    def add_edge(self, src: int, dst: int, delay: float) -> None:
        self.succs[src].append((dst, delay))
        self.indeg[dst] += 1

    def propagate(self) -> list[float]:
        """Topological sweep; returns per-node completion times."""
        n = len(self.duration)
        indeg = self.indeg[:]
        ready = self.ready
        end = [0.0] * n
        queue: deque[int] = deque(i for i in range(n) if indeg[i] == 0)
        processed = 0
        while queue:
            node = queue.popleft()
            processed += 1
            end[node] = ready[node] + self.duration[node]
            for succ, delay in self.succs[node]:
                candidate = end[node] + delay
                if candidate > ready[succ]:
                    ready[succ] = candidate
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
        if processed != n:
            raise RuntimeError(
                f"dependency cycle in program DAG: processed {processed} of {n} nodes "
                "(this indicates a deadlocking communication pattern)"
            )
        return end


def simulate(program: Program, config: SimConfig | None = None) -> Trace:
    """Run one program to completion and return its trace.

    The simulation is deterministic: all randomness (noise, delays) is baked
    into the program's ``COMP`` durations at construction time.

    Raises
    ------
    ValueError
        If the program contains unmatched sends/receives.
    RuntimeError
        If the communication pattern deadlocks (dependency cycle).
    """
    if config is None:
        config = SimConfig()

    dag = _DagBuilder()
    matcher = MessageMatcher()

    # Metadata per DAG node needed to wire matches and emit records.
    # op_nodes[rank] = list of (node, op) in program order.
    op_nodes: list[list[tuple[int, object]]] = []
    # waitall_of[node] = the WAITALL node this ISEND/IRECV belongs to
    waitall_of: dict[int, int] = {}
    # step_of_send[node] = bulk-synchronous step of an ISEND node
    step_of_send: dict[int, int] = {}
    # prewait[(rank, step)] = node just before the step's WAITALL (the rank's
    # posting-complete time; anchor of the progress-coupling rule)
    prewait: dict[tuple[int, int], int] = {}

    for rank, rank_ops in enumerate(program.ops):
        prev = -1
        nodes_here: list[tuple[int, object]] = []
        pending_reqs: list[int] = []
        for op in rank_ops:
            if op.kind == OpKind.COMP:
                node = dag.add_node(op.duration, prev)
            elif op.kind == OpKind.ISEND:
                domain = config.domain(rank, op.peer)
                node = dag.add_node(config.network.send_overhead(domain), prev)
                matcher.add_send(rank, op.peer, op.tag, op.size, node)
                step_of_send[node] = op.step
                pending_reqs.append(node)
            elif op.kind == OpKind.IRECV:
                node = dag.add_node(0.0, prev)
                matcher.add_recv(op.peer, rank, op.tag, node)
                pending_reqs.append(node)
            elif op.kind == OpKind.WAITALL:
                if prev >= 0:
                    prewait[(rank, op.step)] = prev
                node = dag.add_node(0.0, prev)
                for req in pending_reqs:
                    waitall_of[req] = node
                pending_reqs = []
            else:  # pragma: no cover - OpKind is exhaustive
                raise ValueError(f"unknown op kind {op.kind}")
            nodes_here.append((node, op))
            prev = node
        if pending_reqs:
            raise ValueError(
                f"rank {rank} ends with {len(pending_reqs)} requests not covered "
                "by a WAITALL"
            )
        op_nodes.append(nodes_here)

    # Wire the matched messages.  Rendezvous matches are collected first so
    # the bidirectional progress-coupling rule can be applied afterwards.
    from collections import defaultdict

    rdv_partners: dict[tuple[int, int], set[int]] = defaultdict(set)
    pair_directions: dict[tuple[int, int, int], set[tuple[int, int]]] = defaultdict(set)
    rdv_transfers: list[tuple[object, int, int]] = []  # (match, transfer node, step)

    for m in matcher.finish():
        domain = config.domain(m.src, m.dst)
        proto = select_protocol(m.size, config.eager_limit, config.protocol)
        flight = config.network.transfer_time(m.size, domain)
        o_recv = config.network.recv_overhead(domain)
        send_wait = waitall_of[m.send_node]
        recv_wait = waitall_of[m.recv_node]
        if proto == Protocol.EAGER:
            # Send request is locally complete; ISEND -> its WAITALL.
            dag.add_edge(m.send_node, send_wait, 0.0)
            # Receive request completes at max(arrival, posted) + o_recv.
            completion = dag.add_node(o_recv)
            dag.add_edge(m.send_node, completion, flight)
            dag.add_edge(m.recv_node, completion, 0.0)
            dag.add_edge(completion, recv_wait, 0.0)
        else:  # rendezvous: handshake, then transfer; both requests finish at end
            transfer = dag.add_node(flight + o_recv)
            dag.add_edge(m.send_node, transfer, 0.0)
            dag.add_edge(m.recv_node, transfer, 0.0)
            dag.add_edge(transfer, send_wait, 0.0)
            dag.add_edge(transfer, recv_wait, 0.0)
            step = step_of_send[m.send_node]
            rdv_partners[(m.src, step)].add(m.dst)
            rdv_partners[(m.dst, step)].add(m.src)
            lo, hi = (m.src, m.dst) if m.src < m.dst else (m.dst, m.src)
            pair_directions[(lo, hi, step)].add((m.src, m.dst))
            rdv_transfers.append((m, transfer, step))

    # Bidirectional rendezvous progress coupling (σ = 2 of Eq. 2): when a
    # pair exchanges rendezvous messages both ways in one step, its transfers
    # additionally wait for the posting-complete times of both endpoints'
    # same-step rendezvous partners.  Posting times are primary quantities
    # (execution end + send overheads), so the rule reaches exactly one hop.
    for m, transfer, step in rdv_transfers:
        lo, hi = (m.src, m.dst) if m.src < m.dst else (m.dst, m.src)
        if len(pair_directions[(lo, hi, step)]) < 2:
            continue
        coupled = rdv_partners[(m.src, step)] | rdv_partners[(m.dst, step)]
        for p in coupled:
            anchor = prewait.get((p, step))
            if anchor is not None:
                dag.add_edge(anchor, transfer, 0.0)

    end = dag.propagate()

    records: list[OpRecord] = []
    for rank, nodes_here in enumerate(op_nodes):
        for node, op in nodes_here:
            pred = dag.prog_pred[node]
            local_ready = end[pred] if pred >= 0 else 0.0
            if op.kind == OpKind.WAITALL:
                start = local_ready
            else:
                start = dag.ready[node]
            records.append(
                OpRecord(
                    rank=rank,
                    step=op.step,
                    kind=op.kind,
                    start=start,
                    end=end[node],
                    peer=op.peer,
                    size=op.size,
                )
            )

    trace = Trace(
        n_ranks=program.n_ranks,
        n_steps=program.n_steps,
        records=records,
        meta={**program.meta, "engine": "dag", "protocol": config.protocol.value,
              "eager_limit": config.eager_limit},
    )
    return trace
