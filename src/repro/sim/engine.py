"""The authoritative static-DAG discrete-event engine.

Bulk-synchronous programs with deterministic message matching form a static
dependency DAG: per-rank operations are chained in program order, and each
matched message adds cross-rank edges whose shape depends on the protocol:

- **eager** — the send completes locally (no backward edge); the receive
  request completes at ``max(message arrival, recv posted)``.  Modelled as
  a virtual *completion* node with edges from the ``ISEND`` (weighted by
  the flight time) and the ``IRECV``.
- **rendezvous** — the transfer starts only when *both* the sender and the
  receiver have arrived; both requests complete at the end of the transfer.
  Modelled as a virtual *transfer* node (duration = transfer time) feeding
  both ranks' ``WAITALL``.  This is the mechanism by which delays propagate
  against the message direction (Fig. 5(e,f)).
- **bidirectional rendezvous progress coupling** — the paper measures that
  idle waves travel *twice* as fast under bidirectional rendezvous
  communication (σ = 2 in Eq. 2): "two neighbors of the delayed process are
  blocked in either direction".  We model this as a one-hop coupling rule:
  when a pair of ranks exchanges rendezvous messages in *both* directions
  within a step, the pair's transfers additionally wait for the posting
  times of both endpoints' other same-step rendezvous partners.  The rule
  uses posting (not completion) times, so it reaches exactly one extra hop
  and cannot cascade; it reproduces the measured σ = 2 (and σ·d for d > 1)
  while leaving unidirectional and eager traffic untouched.

The engine separates the **structure** of that DAG from the **weights**
flowing through it.  Message matching is deterministic, so the node/edge
graph depends only on the program's operation schedule and the network
configuration — never on the drawn execution-phase durations.  A campaign
that re-simulates the same program under hundreds of delay/noise draws
therefore builds the graph **once**:

- :func:`build_dag` compiles a program + config into a :class:`StaticDag`
  holding CSR-style NumPy arrays (``succ_indptr``/``succ_index`` successor
  lists, ``edge_delay`` slots) plus a precomputed topological level order;
- :meth:`StaticDag.propagate` runs the Kahn sweep as a vectorized
  per-level ``np.maximum.at`` recurrence.  Durations may carry a leading
  batch axis, so B draws flow through one structure as a ``(B, n_nodes)``
  computation — the DAG-engine analogue of
  :func:`repro.sim.lockstep.simulate_lockstep_batch`;
- a keyed structure cache (program-shape hash → :class:`StaticDag`) lets
  sweeps that vary only delays/noise skip graph construction entirely
  (see :func:`clear_dag_cache` / :func:`dag_cache_info`).

Completion times obey
``end(n) = max over predecessors p of (end(p) + edge_delay) + duration(n)``.
Both ``max`` and the two additions are exact per IEEE-754 value (``max``
selects an argument; the sums are the same two-operand additions the
original scalar sweep performed), so the per-level batched propagation is
**bitwise identical** to a per-draw scalar sweep — the property the
campaign runtime's content-addressed cache relies on.  The result is an
exact event-driven simulation of the program under the given network model
— the same modeling approach as LogGOPSim, which the paper uses as its
simulated comparator.

Trace materialization is columnar: :func:`simulate_dag` /
:func:`simulate_dag_batch` return dense per-(rank, step) timing matrices
(:class:`DagResult` / :class:`BatchedDagResult`) and only build
:class:`~repro.sim.trace.OpRecord` objects lazily when a caller asks for a
full :class:`~repro.sim.trace.Trace`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.sim.mpi import DEFAULT_EAGER_LIMIT, MessageMatcher, Protocol, select_protocol
from repro.sim.network import NetworkModel, UniformNetwork
from repro.sim.program import LockstepConfig, OpKind, Program, build_lockstep_program
from repro.sim.topology import CommDomain, ProcessMapping
from repro.sim.trace import OpRecord, Trace

__all__ = [
    "BatchedDagResult",
    "DagResult",
    "EngineError",
    "SimConfig",
    "StaticDag",
    "build_dag",
    "clear_dag_cache",
    "dag_cache_info",
    "simulate",
    "simulate_dag",
    "simulate_dag_batch",
]


class EngineError(RuntimeError):
    """Propagation could not complete: the dependency graph has a cycle.

    A cycle in the program DAG means the communication pattern deadlocks
    (e.g. two ranks that each wait for the other's rendezvous transfer
    before posting their own).  The error carries enough structure for a
    campaign runner to report *where* the program wedged:

    Attributes
    ----------
    n_unprocessed:
        Number of DAG nodes whose dependencies never resolved.
    first_blocked_rank:
        The lowest-program-order rank owning an unprocessed node, or
        ``-1`` when only virtual (transfer/completion) nodes remain.
    """

    def __init__(self, message: str, *, n_unprocessed: int = 0,
                 first_blocked_rank: int = -1) -> None:
        super().__init__(message)
        self.n_unprocessed = int(n_unprocessed)
        self.first_blocked_rank = int(first_blocked_rank)


@dataclass(frozen=True)
class SimConfig:
    """Everything the engine needs besides the program itself.

    Parameters
    ----------
    network:
        Transfer-time model.
    mapping:
        Rank placement, used to classify each message's
        :class:`~repro.sim.topology.CommDomain`.  When omitted, every pair
        of distinct ranks is treated as inter-node (the "one process per
        node" configuration of Figs. 4, 5 and 7).
    eager_limit:
        Protocol switch point in bytes (used when ``protocol`` is AUTO).
    protocol:
        Force eager or rendezvous for *all* messages, or AUTO for the
        size-based rule.
    """

    network: NetworkModel = field(default_factory=UniformNetwork)
    mapping: ProcessMapping | None = None
    eager_limit: int = DEFAULT_EAGER_LIMIT
    protocol: Protocol = Protocol.AUTO

    def domain(self, a: int, b: int) -> CommDomain:
        if self.mapping is not None:
            return self.mapping.domain(a, b)
        return CommDomain.SELF if a == b else CommDomain.INTER_NODE


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` index ranges."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = starts - np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(shifts, counts) + np.arange(total, dtype=np.int64)


@dataclass
class StaticDag:
    """The delay-independent structure of one program's dependency DAG.

    Built once per (program shape, config) by :func:`build_dag`; per-draw
    execution durations are injected at :meth:`propagate` time.  All
    structural state is held in flat NumPy arrays:

    - ``succ_indptr``/``succ_index`` — CSR successor lists: node ``u``'s
      successors are ``succ_index[succ_indptr[u]:succ_indptr[u+1]]``;
    - ``edge_delay`` — per-edge delay slot, aligned with ``succ_index``
      (flight times of eager arrival edges; 0 elsewhere);
    - ``level_order``/``level_ptr`` — a topological level schedule: the
      nodes of level ``L`` are
      ``level_order[level_ptr[L]:level_ptr[L+1]]`` and depend only on
      nodes of earlier levels;
    - ``base_duration`` — structure-derived node durations (send/recv
      overheads, transfer flight times); execution-phase (``COMP``) slots
      hold 0 and are filled per draw.

    The remaining arrays map DAG nodes back to program coordinates for
    columnar timing extraction (which (rank, step) cell a ``COMP`` or
    ``WAITALL`` node belongs to) and for lazy trace materialization.
    """

    n_ranks: int
    n_steps: int
    # -- CSR structure -------------------------------------------------
    succ_indptr: np.ndarray  # [n_nodes + 1] int64
    succ_index: np.ndarray  # [n_edges] int64
    edge_delay: np.ndarray  # [n_edges] float64, CSR order
    base_duration: np.ndarray  # [n_nodes] float64 (COMP slots are 0)
    prog_pred: np.ndarray  # [n_nodes] int64, -1 for chain heads / virtual
    # -- topological level schedule -------------------------------------
    level_order: np.ndarray  # [n_nodes] int64 node permutation
    level_ptr: np.ndarray  # [n_levels + 1] int64
    # level-major edge schedule (a permutation of the CSR edges)
    edge_perm: np.ndarray  # [n_edges] int64 CSR positions, level order
    edge_src_lv: np.ndarray  # [n_edges] int64
    edge_dst_lv: np.ndarray  # [n_edges] int64
    # -- program coordinates --------------------------------------------
    comp_node: np.ndarray  # [n_comp] int64, program order
    comp_rank: np.ndarray  # [n_comp] int64
    comp_step: np.ndarray  # [n_comp] int64 (may be out of matrix range)
    comp_op_idx: np.ndarray  # [n_comp] int64 op position within its rank
    wait_node: np.ndarray  # [n_wait] int64, program order
    wait_rank: np.ndarray  # [n_wait] int64
    wait_step: np.ndarray  # [n_wait] int64
    rank_node_ids: tuple  # per rank: int64 array aligned with program ops

    # -- derived (computed in __post_init__) ----------------------------
    #: exactly one COMP + one WAITALL per (rank, step) cell — the shape
    #: for which lazy trace materialization is exact
    lockstep_shaped: bool = field(init=False, repr=False)
    _edge_delay_lv: np.ndarray = field(init=False, repr=False)
    _comp_in: np.ndarray = field(init=False, repr=False)  # step-in-range mask
    _wait_in: np.ndarray = field(init=False, repr=False)
    _no_comp: np.ndarray = field(init=False, repr=False)  # [P, S] bool
    _no_wait: np.ndarray = field(init=False, repr=False)
    _comp_cells_unique: bool = field(init=False, repr=False)
    _level_edge_ptr: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._edge_delay_lv = np.ascontiguousarray(
            self.edge_delay[self.edge_perm])[:, None]
        self._comp_in = (0 <= self.comp_step) & (self.comp_step < self.n_steps)
        self._wait_in = (0 <= self.wait_step) & (self.wait_step < self.n_steps)
        self._no_comp = np.ones((self.n_ranks, self.n_steps), dtype=bool)
        self._no_comp[self.comp_rank[self._comp_in],
                      self.comp_step[self._comp_in]] = False
        self._no_wait = np.ones((self.n_ranks, self.n_steps), dtype=bool)
        self._no_wait[self.wait_rank[self._wait_in],
                      self.wait_step[self._wait_in]] = False
        # Exactly one COMP and one WAITALL per (rank, step) cell?  Lazy
        # trace materialization is only exact for that shape (the wait
        # start is then recoverable as completion - idle).
        n_cells = self.n_ranks * self.n_steps
        comp_counts = np.bincount(
            self.comp_rank[self._comp_in] * self.n_steps
            + self.comp_step[self._comp_in], minlength=n_cells)
        wait_counts = np.bincount(
            self.wait_rank[self._wait_in] * self.n_steps
            + self.wait_step[self._wait_in], minlength=n_cells)
        self._comp_cells_unique = bool(np.all(comp_counts <= 1))
        self.lockstep_shaped = bool(
            np.all(self._comp_in) and np.all(self._wait_in)
            and self._comp_cells_unique and np.all(comp_counts == 1)
            and np.all(wait_counts == 1)
        )
        # Per-level edge ranges: level L's outgoing edges are the CSR rows
        # of its nodes, concatenated in level order (== edge_perm ranges).
        row_counts = self.succ_indptr[1:] - self.succ_indptr[:-1]
        level_edge_counts = np.add.reduceat(
            np.concatenate((row_counts[self.level_order], [0])),
            self.level_ptr[:-1],
        ) if self.n_levels else np.empty(0, dtype=np.int64)
        self._level_edge_ptr = np.concatenate(
            ([0], np.cumsum(level_edge_counts))).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self.succ_indptr.shape[0] - 1)

    @property
    def n_edges(self) -> int:
        return int(self.succ_index.shape[0])

    @property
    def n_levels(self) -> int:
        return int(self.level_ptr.shape[0] - 1)

    # ------------------------------------------------------------------
    # duration assembly
    # ------------------------------------------------------------------
    def durations_for(self, program: Program) -> np.ndarray:
        """Per-node durations with ``program``'s COMP phases filled in.

        ``program`` must have the same shape as the one this structure
        was built from (same operation schedule; only durations differ).
        """
        dur = self.base_duration.copy()
        if self.comp_node.size:
            ops = program.ops
            dur[self.comp_node] = [
                ops[r][j].duration for r, j in zip(self.comp_rank, self.comp_op_idx)
            ]
        return dur

    def durations_from_exec(self, exec_times: np.ndarray) -> np.ndarray:
        """Per-node durations from a dense ``(..., P, S)`` execution matrix.

        Valid for lockstep-shaped programs (one ``COMP`` per rank and
        step); leading axes become batch axes of the returned
        ``(..., n_nodes)`` array.
        """
        exec_times = np.asarray(exec_times, dtype=float)
        if exec_times.shape[-2:] != (self.n_ranks, self.n_steps):
            raise ValueError(
                f"exec_times shape {exec_times.shape} does not end in "
                f"({self.n_ranks}, {self.n_steps})"
            )
        if not np.all(self._comp_in):
            raise ValueError(
                "program has COMP phases outside the step grid; use "
                "durations_for(program) instead"
            )
        if not self._comp_cells_unique:
            raise ValueError(
                "program has several COMP phases in one (rank, step) cell — "
                "a dense exec-time matrix cannot address them individually; "
                "use durations_for(program) instead"
            )
        lead = exec_times.shape[:-2]
        dur = np.broadcast_to(self.base_duration, (*lead, self.n_nodes)).copy()
        dur[..., self.comp_node] = exec_times[..., self.comp_rank, self.comp_step]
        return dur

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def propagate(self, durations: "np.ndarray | None" = None,
                  edge_delays: "np.ndarray | None" = None) -> np.ndarray:
        """Topological sweep; returns per-node completion times.

        Parameters
        ----------
        durations:
            Per-node durations, shape ``(..., n_nodes)``; leading axes are
            batch axes and every batch slice is bitwise identical to a
            scalar sweep of that slice.  Defaults to ``base_duration``
            (all COMP phases zero-length).
        edge_delays:
            Optional per-edge delay override in CSR order (aligned with
            ``succ_index``); defaults to the structure's ``edge_delay``.
        """
        if durations is None:
            durations = self.base_duration
        d = np.asarray(durations, dtype=float)
        if d.shape[-1] != self.n_nodes:
            raise ValueError(
                f"durations last axis {d.shape[-1]} != n_nodes {self.n_nodes}"
            )
        lead = d.shape[:-1]
        cols = np.ascontiguousarray(d.reshape(-1, self.n_nodes).T)
        _, end = self._propagate_cols(cols, edge_delays)
        return end.T.reshape(*lead, self.n_nodes)

    def _propagate_cols(self, dur_cols: np.ndarray,
                        edge_delays: "np.ndarray | None" = None
                        ) -> "tuple[np.ndarray, np.ndarray]":
        """Core sweep in ``(n_nodes, B)`` layout; returns ``(ready, end)``.

        ``ready[u]`` is the time node ``u``'s dependencies resolved (the
        record *start* time of non-WAITALL operations); ``end[u]`` is
        ``ready[u] + duration[u]``.
        """
        n, b = dur_cols.shape
        if edge_delays is None:
            delay_lv = self._edge_delay_lv
        else:
            edge_delays = np.asarray(edge_delays, dtype=float)
            if edge_delays.shape != (self.n_edges,):
                raise ValueError(
                    f"edge_delays shape {edge_delays.shape} != ({self.n_edges},)"
                )
            delay_lv = edge_delays[self.edge_perm][:, None]
        ready = np.zeros((n, b))
        end = np.empty((n, b))
        level_ptr, edge_ptr = self.level_ptr, self._level_edge_ptr
        order, src_lv, dst_lv = self.level_order, self.edge_src_lv, self.edge_dst_lv
        with telemetry.span("engine.dag.propagate", batch=b,
                            n_levels=self.n_levels, n_nodes=n):
            for lv in range(self.n_levels):
                nodes = order[level_ptr[lv]:level_ptr[lv + 1]]
                end[nodes] = ready[nodes] + dur_cols[nodes]
                e0, e1 = edge_ptr[lv], edge_ptr[lv + 1]
                if e1 > e0:
                    np.maximum.at(
                        ready, dst_lv[e0:e1], end[src_lv[e0:e1]] + delay_lv[e0:e1]
                    )
        return ready, end

    # ------------------------------------------------------------------
    # columnar timing extraction
    # ------------------------------------------------------------------
    def _timing_cols(self, ready: np.ndarray, end: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Dense ``(B, P, S)`` matrices from per-node ``(n_nodes, B)`` times.

        Returns ``(exec_start, exec_end, completion, idle)`` with exactly
        the semantics of :class:`~repro.sim.trace.Trace`'s matrix methods
        (max/min reduction over same-cell records, NaN where a cell has no
        record, idle summed over a cell's Waitalls in program order).
        """
        p, s, b = self.n_ranks, self.n_steps, end.shape[1]
        cn = self.comp_node[self._comp_in]
        cr = self.comp_rank[self._comp_in]
        cs = self.comp_step[self._comp_in]
        wn = self.wait_node[self._wait_in]
        wr = self.wait_rank[self._wait_in]
        ws = self.wait_step[self._wait_in]

        exec_end = np.full((p, s, b), -np.inf)
        np.maximum.at(exec_end, (cr, cs), end[cn])
        exec_end[self._no_comp] = np.nan

        exec_start = np.full((p, s, b), np.inf)
        np.minimum.at(exec_start, (cr, cs), ready[cn])
        exec_start[self._no_comp] = np.nan

        completion = np.full((p, s, b), -np.inf)
        np.maximum.at(completion, (wr, ws), end[wn])
        completion[self._no_wait] = np.nan

        # A WAITALL's record start is its local-chain readiness: the end of
        # its program predecessor (0 at a chain head), not ``ready`` —
        # cross-rank request edges must not shift the wait's start.
        pred = self.prog_pred[wn]
        wait_start = np.where((pred >= 0)[:, None],
                              end[np.maximum(pred, 0)], 0.0)
        idle = np.zeros((p, s, b))
        np.add.at(idle, (wr, ws), end[wn] - wait_start)

        to_batch = lambda m: np.ascontiguousarray(np.moveaxis(m, -1, 0))
        return (to_batch(exec_start), to_batch(exec_end),
                to_batch(completion), to_batch(idle))


class _DagAccumulator:
    """Collects nodes and edges while the program is walked."""

    __slots__ = ("duration", "succs", "prog_pred", "node_rank")

    def __init__(self) -> None:
        self.duration: list[float] = []
        self.succs: list[list[tuple[int, float]]] = []
        self.prog_pred: list[int] = []
        self.node_rank: list[int] = []

    def add_node(self, duration: float, prog_pred: int = -1, rank: int = -1) -> int:
        node = len(self.duration)
        self.duration.append(duration)
        self.succs.append([])
        self.prog_pred.append(prog_pred)
        self.node_rank.append(rank)
        if prog_pred >= 0:
            self.add_edge(prog_pred, node, 0.0)
        return node

    def add_edge(self, src: int, dst: int, delay: float) -> None:
        self.succs[src].append((dst, delay))


def _levelize(n: int, indptr: np.ndarray, succ: np.ndarray,
              node_rank: np.ndarray
              ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Kahn level schedule over a CSR graph; raises :class:`EngineError`
    on a cycle.  Returns ``(level_order, level_ptr, edge_perm,
    edge_src_lv, edge_dst_lv)``."""
    indeg = np.bincount(succ, minlength=n) if succ.size else np.zeros(n, dtype=np.int64)
    indeg = indeg.astype(np.int64, copy=False).copy()
    frontier = np.flatnonzero(indeg == 0)
    order_parts: list[np.ndarray] = []
    perm_parts: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    level_ptr = [0]
    processed = 0
    while frontier.size:
        order_parts.append(frontier)
        processed += int(frontier.size)
        level_ptr.append(processed)
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        epos = _concat_ranges(starts, counts)
        perm_parts.append(epos)
        src_parts.append(np.repeat(frontier, counts))
        dsts = succ[epos]
        np.subtract.at(indeg, dsts, 1)
        cand = np.unique(dsts)
        frontier = cand[indeg[cand] == 0]
    if processed != n:
        unprocessed = np.setdiff1d(np.arange(n), np.concatenate(order_parts)
                                   if order_parts else np.empty(0, np.int64))
        blocked_ranks = node_rank[unprocessed]
        blocked_ranks = blocked_ranks[blocked_ranks >= 0]
        first_blocked = int(blocked_ranks[0]) if blocked_ranks.size else -1
        raise EngineError(
            f"dependency cycle in program DAG: processed {processed} of {n} nodes "
            f"({n - processed} unresolved, first blocked rank {first_blocked}) — "
            "this indicates a deadlocking communication pattern",
            n_unprocessed=n - processed,
            first_blocked_rank=first_blocked,
        )
    empty = np.empty(0, dtype=np.int64)
    perm = np.concatenate(perm_parts) if perm_parts else empty
    return (
        np.concatenate(order_parts) if order_parts else empty,
        np.asarray(level_ptr, dtype=np.int64),
        perm,
        np.concatenate(src_parts) if src_parts else empty,
        succ[perm],  # == edge_dst in level order, the CSR permutation image
    )


def _build_structure(program: Program, config: SimConfig) -> StaticDag:
    """Walk the program once and freeze its dependency DAG (uncached)."""
    acc = _DagAccumulator()
    matcher = MessageMatcher()

    rank_node_ids: list[np.ndarray] = []
    comp_node: list[int] = []
    comp_rank: list[int] = []
    comp_step: list[int] = []
    comp_op_idx: list[int] = []
    wait_node: list[int] = []
    wait_rank: list[int] = []
    wait_step: list[int] = []
    # waitall_of[node] = the WAITALL node this ISEND/IRECV belongs to
    waitall_of: dict[int, int] = {}
    # step_of_send[node] = bulk-synchronous step of an ISEND node
    step_of_send: dict[int, int] = {}
    # prewait[(rank, step)] = node just before the step's WAITALL (the rank's
    # posting-complete time; anchor of the progress-coupling rule)
    prewait: dict[tuple[int, int], int] = {}

    for rank, rank_ops in enumerate(program.ops):
        prev = -1
        ids: list[int] = []
        pending_reqs: list[int] = []
        for op_idx, op in enumerate(rank_ops):
            if op.kind == OpKind.COMP:
                # Duration slot: filled per draw (the delay-dependent part).
                node = acc.add_node(0.0, prev, rank)
                comp_node.append(node)
                comp_rank.append(rank)
                comp_step.append(op.step)
                comp_op_idx.append(op_idx)
            elif op.kind == OpKind.ISEND:
                domain = config.domain(rank, op.peer)
                node = acc.add_node(config.network.send_overhead(domain), prev, rank)
                matcher.add_send(rank, op.peer, op.tag, op.size, node)
                step_of_send[node] = op.step
                pending_reqs.append(node)
            elif op.kind == OpKind.IRECV:
                node = acc.add_node(0.0, prev, rank)
                matcher.add_recv(op.peer, rank, op.tag, node)
                pending_reqs.append(node)
            elif op.kind == OpKind.WAITALL:
                if prev >= 0:
                    prewait[(rank, op.step)] = prev
                node = acc.add_node(0.0, prev, rank)
                for req in pending_reqs:
                    waitall_of[req] = node
                pending_reqs = []
                wait_node.append(node)
                wait_rank.append(rank)
                wait_step.append(op.step)
            else:  # pragma: no cover - OpKind is exhaustive
                raise ValueError(f"unknown op kind {op.kind}")
            ids.append(node)
            prev = node
        if pending_reqs:
            raise ValueError(
                f"rank {rank} ends with {len(pending_reqs)} requests not covered "
                "by a WAITALL"
            )
        rank_node_ids.append(np.asarray(ids, dtype=np.int64))

    # Wire the matched messages.  Rendezvous matches are collected first so
    # the bidirectional progress-coupling rule can be applied afterwards.
    from collections import defaultdict

    rdv_partners: dict[tuple[int, int], set[int]] = defaultdict(set)
    pair_directions: dict[tuple[int, int, int], set[tuple[int, int]]] = defaultdict(set)
    rdv_transfers: list[tuple[object, int, int]] = []  # (match, transfer node, step)

    for m in matcher.finish():
        domain = config.domain(m.src, m.dst)
        proto = select_protocol(m.size, config.eager_limit, config.protocol)
        flight = config.network.transfer_time(m.size, domain)
        o_recv = config.network.recv_overhead(domain)
        send_wait = waitall_of[m.send_node]
        recv_wait = waitall_of[m.recv_node]
        if proto == Protocol.EAGER:
            # Send request is locally complete; ISEND -> its WAITALL.
            acc.add_edge(m.send_node, send_wait, 0.0)
            # Receive request completes at max(arrival, posted) + o_recv.
            completion = acc.add_node(o_recv)
            acc.add_edge(m.send_node, completion, flight)
            acc.add_edge(m.recv_node, completion, 0.0)
            acc.add_edge(completion, recv_wait, 0.0)
        else:  # rendezvous: handshake, then transfer; both requests finish at end
            transfer = acc.add_node(flight + o_recv)
            acc.add_edge(m.send_node, transfer, 0.0)
            acc.add_edge(m.recv_node, transfer, 0.0)
            acc.add_edge(transfer, send_wait, 0.0)
            acc.add_edge(transfer, recv_wait, 0.0)
            step = step_of_send[m.send_node]
            rdv_partners[(m.src, step)].add(m.dst)
            rdv_partners[(m.dst, step)].add(m.src)
            lo, hi = (m.src, m.dst) if m.src < m.dst else (m.dst, m.src)
            pair_directions[(lo, hi, step)].add((m.src, m.dst))
            rdv_transfers.append((m, transfer, step))

    # Bidirectional rendezvous progress coupling (σ = 2 of Eq. 2): when a
    # pair exchanges rendezvous messages both ways in one step, its transfers
    # additionally wait for the posting-complete times of both endpoints'
    # same-step rendezvous partners.  Posting times are primary quantities
    # (execution end + send overheads), so the rule reaches exactly one hop.
    for m, transfer, step in rdv_transfers:
        lo, hi = (m.src, m.dst) if m.src < m.dst else (m.dst, m.src)
        if len(pair_directions[(lo, hi, step)]) < 2:
            continue
        coupled = rdv_partners[(m.src, step)] | rdv_partners[(m.dst, step)]
        for p in coupled:
            anchor = prewait.get((p, step))
            if anchor is not None:
                acc.add_edge(anchor, transfer, 0.0)

    # Freeze into CSR + level schedule.
    n = len(acc.duration)
    counts = np.fromiter((len(s) for s in acc.succs), dtype=np.int64, count=n)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    n_edges = int(indptr[-1])
    succ = np.fromiter((dst for s in acc.succs for dst, _ in s),
                       dtype=np.int64, count=n_edges)
    delay = np.fromiter((d for s in acc.succs for _, d in s),
                        dtype=float, count=n_edges)
    node_rank = np.asarray(acc.node_rank, dtype=np.int64)

    level_order, level_ptr, edge_perm, edge_src_lv, edge_dst_lv = _levelize(
        n, indptr, succ, node_rank)

    return StaticDag(
        n_ranks=program.n_ranks,
        n_steps=program.n_steps,
        succ_indptr=indptr,
        succ_index=succ,
        edge_delay=delay,
        base_duration=np.asarray(acc.duration, dtype=float),
        prog_pred=np.asarray(acc.prog_pred, dtype=np.int64),
        level_order=level_order,
        level_ptr=level_ptr,
        edge_perm=edge_perm,
        edge_src_lv=edge_src_lv,
        edge_dst_lv=edge_dst_lv,
        comp_node=np.asarray(comp_node, dtype=np.int64),
        comp_rank=np.asarray(comp_rank, dtype=np.int64),
        comp_step=np.asarray(comp_step, dtype=np.int64),
        comp_op_idx=np.asarray(comp_op_idx, dtype=np.int64),
        wait_node=np.asarray(wait_node, dtype=np.int64),
        wait_rank=np.asarray(wait_rank, dtype=np.int64),
        wait_step=np.asarray(wait_step, dtype=np.int64),
        rank_node_ids=tuple(rank_node_ids),
    )


# ----------------------------------------------------------------------
# structure cache
# ----------------------------------------------------------------------

_DAG_CACHE: "OrderedDict[tuple, StaticDag]" = OrderedDict()
_DAG_CACHE_MAX = 16
_DAG_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _program_shape_key(program: Program) -> tuple:
    """Hashable program shape: every structural field, no COMP durations."""
    return (
        program.n_steps,
        tuple(
            tuple((int(op.kind), op.peer, op.size, op.tag, op.step)
                  for op in rank_ops)
            for rank_ops in program.ops
        ),
    )


def _config_key(config: SimConfig) -> tuple:
    # dataclass reprs are deterministic and cover every field that feeds
    # edge construction (per-domain flights/overheads, placement).
    return (config.protocol, config.eager_limit,
            type(config.network).__name__, repr(config.network),
            repr(config.mapping))


def build_dag(program: Program, config: "SimConfig | None" = None,
              cache: bool = True) -> StaticDag:
    """Compile a program + config into a :class:`StaticDag` (cached).

    The cache key is the program's *shape* (operation kinds, peers, sizes,
    tags, steps — everything except COMP durations) plus the config's
    network/mapping/protocol parameters, so a delay campaign's draws all
    hit one entry.  See CONTRIBUTING.md for when the cache must be
    invalidated (:func:`clear_dag_cache`).
    """
    if config is None:
        config = SimConfig()
    if not cache:
        with telemetry.span("engine.build_dag", cached=False) as sp:
            dag = _build_structure(program, config)
            sp.set(n_nodes=dag.n_nodes, n_edges=dag.n_edges,
                   n_levels=dag.n_levels)
        return dag
    key = (_program_shape_key(program), _config_key(config))
    dag = _DAG_CACHE.get(key)
    if dag is not None:
        _DAG_CACHE.move_to_end(key)
        _DAG_CACHE_STATS["hits"] += 1
        telemetry.count("dag.cache.hits")
        return dag
    _DAG_CACHE_STATS["misses"] += 1
    telemetry.count("dag.cache.misses")
    with telemetry.span("engine.build_dag", cached=True) as sp:
        dag = _build_structure(program, config)
        sp.set(n_nodes=dag.n_nodes, n_edges=dag.n_edges,
               n_levels=dag.n_levels)
    _DAG_CACHE[key] = dag
    while len(_DAG_CACHE) > _DAG_CACHE_MAX:
        _DAG_CACHE.popitem(last=False)
        _DAG_CACHE_STATS["evictions"] += 1
        telemetry.count("dag.cache.evictions")
    return dag


def clear_dag_cache() -> None:
    """Drop every cached :class:`StaticDag` and reset the hit statistics."""
    _DAG_CACHE.clear()
    _DAG_CACHE_STATS.update(hits=0, misses=0, evictions=0)


def dag_cache_info() -> dict:
    """Cache observability: size/occupancy plus the always-on hit, miss,
    and eviction counters (mirrored into telemetry as ``dag.cache.*``
    when a recorder is enabled)."""
    return {"size": len(_DAG_CACHE), "max_size": _DAG_CACHE_MAX,
            **_DAG_CACHE_STATS}


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def _dag_meta(program_meta: dict, config: SimConfig) -> dict:
    return {**program_meta, "engine": "dag", "protocol": config.protocol.value,
            "eager_limit": config.eager_limit}


@dataclass
class DagResult:
    """Dense timing matrices from one DAG-engine run (columnar form).

    All arrays are ``[n_ranks, n_steps]`` wall-clock seconds with exactly
    the semantics of the corresponding :class:`~repro.sim.trace.Trace`
    matrix methods.  No :class:`~repro.sim.trace.OpRecord` objects exist
    until :meth:`to_trace` is called — analysis-layer consumers read the
    dense arrays directly.
    """

    exec_start: np.ndarray
    exec_end: np.ndarray
    completion: np.ndarray
    idle: np.ndarray
    meta: dict = field(default_factory=dict)
    #: whether the source program had exactly one COMP + one WAITALL per
    #: (rank, step) — the only shape :meth:`to_trace` can reconstruct
    exact_trace: bool = True

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[1]

    def total_runtime(self) -> float:
        """Wall-clock completion of the last rank."""
        return float(np.nanmax(self.completion)) if self.completion.size else 0.0

    def to_trace(self) -> Trace:
        """Materialize COMP + WAITALL records (lazy trace construction).

        Mirrors :meth:`repro.sim.lockstep.LockstepResult.to_trace`: the
        per-message ISEND/IRECV records are not rebuilt — use
        :func:`simulate` when a complete record stream is needed.

        Raises
        ------
        ValueError
            If the source program was not lockstep-shaped (a cell with
            several Waitalls, or none): the dense matrices stay exact,
            but per-record start times cannot be reconstructed from them.
        """
        if not self.exact_trace:
            raise ValueError(
                "program is not lockstep-shaped (one COMP + one WAITALL per "
                "rank and step); use simulate() for a full record stream"
            )
        return Trace.from_matrices(
            exec_start=self.exec_start,
            exec_end=self.exec_end,
            wait_start=self.completion - self.idle,
            completion=self.completion,
            meta=dict(self.meta),
        )


@dataclass
class BatchedDagResult:
    """Timing matrices of B independent DAG runs propagated together.

    All arrays are ``[n_batch, n_ranks, n_steps]`` wall-clock seconds.
    Indexing (``result[b]``) yields the b-th run as a :class:`DagResult`
    (the slices share memory with the batch); every slice is bitwise
    identical to the corresponding per-draw :func:`simulate_dag` run —
    propagation is elementwise along the batch axis.
    """

    exec_start: np.ndarray
    exec_end: np.ndarray
    completion: np.ndarray
    idle: np.ndarray
    meta: dict = field(default_factory=dict)
    exact_trace: bool = True

    @property
    def n_batch(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[1]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[2]

    def __len__(self) -> int:
        return self.n_batch

    def __getitem__(self, b: int) -> DagResult:
        if not -self.n_batch <= b < self.n_batch:
            raise IndexError(f"batch index {b} out of range [0, {self.n_batch})")
        return DagResult(
            exec_start=self.exec_start[b],
            exec_end=self.exec_end[b],
            completion=self.completion[b],
            idle=self.idle[b],
            meta=dict(self.meta),
            exact_trace=self.exact_trace,
        )

    def results(self):
        """Iterate over the B runs as :class:`DagResult` views."""
        return (self[b] for b in range(self.n_batch))

    def total_runtimes(self) -> np.ndarray:
        """Per-run wall-clock completion, shape ``[n_batch]``."""
        return np.nanmax(self.completion, axis=(1, 2))


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def simulate(program: Program, config: SimConfig | None = None) -> Trace:
    """Run one program to completion and return its full trace.

    The simulation is deterministic: all randomness (noise, delays) is baked
    into the program's ``COMP`` durations at construction time.  The DAG
    structure is resolved through the build cache, so repeated calls with
    same-shaped programs (a delay campaign's draws) skip graph
    construction and only re-propagate the weights.

    Raises
    ------
    ValueError
        If the program contains unmatched sends/receives.
    EngineError
        If the communication pattern deadlocks (dependency cycle).
    """
    if config is None:
        config = SimConfig()
    dag = build_dag(program, config)
    ready, end = dag._propagate_cols(dag.durations_for(program)[:, None])
    r_ready, r_end = ready[:, 0], end[:, 0]
    prog_pred = dag.prog_pred

    records: list[OpRecord] = []
    for rank, (rank_ops, node_ids) in enumerate(zip(program.ops, dag.rank_node_ids)):
        for op, node in zip(rank_ops, node_ids):
            if op.kind == OpKind.WAITALL:
                pred = prog_pred[node]
                start = r_end[pred] if pred >= 0 else 0.0
            else:
                start = r_ready[node]
            records.append(
                OpRecord(
                    rank=rank,
                    step=op.step,
                    kind=op.kind,
                    start=float(start),
                    end=float(r_end[node]),
                    peer=op.peer,
                    size=op.size,
                )
            )

    return Trace(
        n_ranks=program.n_ranks,
        n_steps=program.n_steps,
        records=records,
        meta=_dag_meta(program.meta, config),
    )


def simulate_dag(program: Program, config: SimConfig | None = None,
                 exec_times: "np.ndarray | None" = None) -> DagResult:
    """Run one program and return dense timing matrices (no records).

    The columnar fast path of the DAG engine: identical numbers to
    :func:`simulate` (``DagResult.exec_end`` is bitwise equal to
    ``trace.exec_end_matrix()``, and so on) without materializing a
    single :class:`~repro.sim.trace.OpRecord`.

    Parameters
    ----------
    program, config:
        As in :func:`simulate`.
    exec_times:
        Optional dense ``[n_ranks, n_steps]`` execution durations that
        override the program's COMP durations (lockstep-shaped programs
        only) — saves the per-op duration gather when the caller already
        holds the matrix.
    """
    if config is None:
        config = SimConfig()
    dag = build_dag(program, config)
    if exec_times is None:
        durations = dag.durations_for(program)
    else:
        durations = dag.durations_from_exec(exec_times)
    ready, end = dag._propagate_cols(durations[:, None])
    exec_start, exec_end, completion, idle = dag._timing_cols(ready, end)
    return DagResult(
        exec_start=exec_start[0],
        exec_end=exec_end[0],
        completion=completion[0],
        idle=idle[0],
        meta=_dag_meta(program.meta, config),
        exact_trace=dag.lockstep_shaped,
    )


def simulate_dag_batch(cfg: LockstepConfig, exec_times: np.ndarray,
                       config: SimConfig | None = None) -> BatchedDagResult:
    """Simulate B lockstep-program draws as one batched DAG propagation.

    The DAG-engine analogue of
    :func:`repro.sim.lockstep.simulate_lockstep_batch`: the program
    structure is built (or fetched from the structure cache) once and the
    B duration vectors flow through it as a single ``(n_nodes, B)``
    sweep.

    Parameters
    ----------
    cfg:
        Shared experiment parameters (ranks, steps, pattern, message
        size).  ``cfg.delays``/``cfg.noise``/``cfg.seed`` are *not*
        consulted — all per-run variation must already be baked into
        ``exec_times``.
    exec_times:
        ``[n_batch, n_ranks, n_steps]`` execution durations, one matrix
        per run.
    config:
        Network/placement/protocol configuration shared by all runs.

    Returns
    -------
    BatchedDagResult
        ``[n_batch, n_ranks, n_steps]`` timing matrices whose slices are
        bitwise identical to the corresponding per-draw runs.
    """
    if config is None:
        config = SimConfig()
    exec_times = np.asarray(exec_times, dtype=float)
    if exec_times.ndim != 3 or exec_times.shape[1:] != (cfg.n_ranks, cfg.n_steps):
        raise ValueError(
            f"exec_times shape {exec_times.shape} != "
            f"(n_batch, {cfg.n_ranks}, {cfg.n_steps})"
        )
    if exec_times.shape[0] < 1:
        raise ValueError("batch must contain at least one run")

    program = build_lockstep_program(cfg, exec_times[0])
    dag = build_dag(program, config)
    durations = dag.durations_from_exec(exec_times)
    ready, end = dag._propagate_cols(
        np.ascontiguousarray(durations.reshape(-1, dag.n_nodes).T))
    exec_start, exec_end, completion, idle = dag._timing_cols(ready, end)
    meta = _dag_meta(program.meta, config)
    meta["n_batch"] = int(exec_times.shape[0])
    return BatchedDagResult(
        exec_start=exec_start,
        exec_end=exec_end,
        completion=completion,
        idle=idle,
        meta=meta,
        exact_trace=dag.lockstep_shaped,
    )
