"""Point-to-point transfer-time models.

The paper's propagation-speed model (Eq. 2) treats the communication time
``T_comm`` of one message as an opaque quantity: "it does not matter here
what T_comm is composed of, be it latency, overhead, transfer time, etc.".
The simulator therefore only needs a function ``transfer_time(size, domain)``
and we provide the two classic first-principles choices:

- :class:`HockneyModel` — ``T = L + size / B`` (latency + bandwidth), the
  model the paper's modified LogGOPSim uses,
- :class:`LogGPModel` — ``T = L + o_s + o_r + (size - 1) * G``, the LogGP
  refinement with per-byte gap ``G`` and overheads.

Each model holds per-:class:`~repro.sim.topology.CommDomain` parameters so
that intra-socket, inter-socket, and inter-node messages can have different
characteristics (Sec. II-B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.sim.topology import CommDomain

__all__ = ["NetworkModel", "HockneyModel", "LogGPModel", "UniformNetwork"]


class NetworkModel(ABC):
    """Interface: wall-clock cost of moving one message between two ranks."""

    @abstractmethod
    def transfer_time(self, size_bytes: int, domain: CommDomain) -> float:
        """Seconds to move ``size_bytes`` across ``domain`` (flight time)."""

    @abstractmethod
    def send_overhead(self, domain: CommDomain) -> float:
        """CPU-side overhead of posting a send (seconds)."""

    @abstractmethod
    def recv_overhead(self, domain: CommDomain) -> float:
        """CPU-side overhead of completing a receive (seconds)."""

    def total_pingpong_time(self, size_bytes: int, domain: CommDomain) -> float:
        """End-to-end one-way message cost including overheads."""
        return (
            self.send_overhead(domain)
            + self.transfer_time(size_bytes, domain)
            + self.recv_overhead(domain)
        )


def _domain_value(table: dict[CommDomain, float], domain: CommDomain, name: str) -> float:
    if domain == CommDomain.SELF:
        return 0.0
    try:
        return table[domain]
    except KeyError:
        raise KeyError(f"no {name} configured for domain {domain.name}") from None


@dataclass(frozen=True)
class HockneyModel(NetworkModel):
    """Latency/bandwidth model ``T = L + size / B`` per communication domain.

    Parameters
    ----------
    latency:
        Seconds of startup latency per domain.
    bandwidth:
        Asymptotic bandwidth in bytes/second per domain.
    overhead:
        CPU overhead per message (used for both send and recv posting).
    """

    latency: dict[CommDomain, float] = field(
        default_factory=lambda: {
            CommDomain.INTRA_SOCKET: 3e-7,
            CommDomain.INTER_SOCKET: 6e-7,
            CommDomain.INTER_NODE: 1.5e-6,
        }
    )
    bandwidth: dict[CommDomain, float] = field(
        default_factory=lambda: {
            CommDomain.INTRA_SOCKET: 8e9,
            CommDomain.INTER_SOCKET: 5e9,
            CommDomain.INTER_NODE: 3e9,
        }
    )
    overhead: float = 5e-7

    def transfer_time(self, size_bytes: int, domain: CommDomain) -> float:
        if size_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {size_bytes}")
        if domain == CommDomain.SELF:
            return 0.0
        lat = _domain_value(self.latency, domain, "latency")
        bw = _domain_value(self.bandwidth, domain, "bandwidth")
        return lat + size_bytes / bw

    def send_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else self.overhead

    def recv_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else self.overhead


@dataclass(frozen=True)
class LogGPModel(NetworkModel):
    """LogGP model: ``T = L + (size - 1) * G`` flight, with overhead ``o``.

    Parameters per domain follow Culler et al. (LogP) extended with the
    per-byte gap ``G`` (LogGP).  The per-message gap ``g`` limits injection
    rate; our bulk-synchronous programs send a handful of messages per
    phase, so ``g`` enters only as a lower bound on consecutive sends.
    """

    L: dict[CommDomain, float] = field(
        default_factory=lambda: {
            CommDomain.INTRA_SOCKET: 3e-7,
            CommDomain.INTER_SOCKET: 6e-7,
            CommDomain.INTER_NODE: 1.5e-6,
        }
    )
    o: dict[CommDomain, float] = field(
        default_factory=lambda: {
            CommDomain.INTRA_SOCKET: 2e-7,
            CommDomain.INTER_SOCKET: 3e-7,
            CommDomain.INTER_NODE: 5e-7,
        }
    )
    G: dict[CommDomain, float] = field(
        default_factory=lambda: {
            CommDomain.INTRA_SOCKET: 1.25e-10,  # 8 GB/s
            CommDomain.INTER_SOCKET: 2e-10,  # 5 GB/s
            CommDomain.INTER_NODE: 3.33e-10,  # 3 GB/s
        }
    )
    g: float = 1e-6

    def transfer_time(self, size_bytes: int, domain: CommDomain) -> float:
        if size_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {size_bytes}")
        if domain == CommDomain.SELF:
            return 0.0
        lat = _domain_value(self.L, domain, "L")
        gap = _domain_value(self.G, domain, "G")
        return lat + max(size_bytes - 1, 0) * gap

    def send_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else _domain_value(self.o, domain, "o")

    def recv_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else _domain_value(self.o, domain, "o")


@dataclass(frozen=True)
class UniformNetwork(NetworkModel):
    """A network where every domain behaves identically.

    Useful for controlled experiments ("flat network infrastructure",
    Sec. VII) and for validating the analytic speed model, where a single
    well-defined ``T_comm`` is required.
    """

    latency: float = 1.5e-6
    bandwidth: float = 3e9
    overhead: float = 5e-7

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.overhead < 0:
            raise ValueError(f"overhead must be >= 0, got {self.overhead}")

    def transfer_time(self, size_bytes: int, domain: CommDomain) -> float:
        if size_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {size_bytes}")
        if domain == CommDomain.SELF:
            return 0.0
        return self.latency + size_bytes / self.bandwidth

    def send_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else self.overhead

    def recv_overhead(self, domain: CommDomain) -> float:
        return 0.0 if domain == CommDomain.SELF else self.overhead
