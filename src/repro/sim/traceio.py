"""Trace serialization: JSON-lines export/import and CSV export.

Lets simulated traces be archived, diffed across runs, or analyzed with
external tooling (pandas, trace viewers), and lets traces recorded
elsewhere (e.g. converted from a real MPI trace) be fed into the analysis
layer.  The JSON-lines format is one header object followed by one object
per :class:`~repro.sim.trace.OpRecord`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.sim.program import OpKind
from repro.sim.trace import OpRecord, Trace

__all__ = ["write_jsonl", "read_jsonl", "write_csv"]

_FORMAT_VERSION = 1


def _meta_safe(meta: dict) -> dict:
    """Keep only JSON-serializable metadata entries (stringify the rest)."""
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
            out[key] = value
        except TypeError:
            out[key] = repr(value)
    return out


def write_jsonl(trace: Trace, target: "str | Path | TextIO") -> None:
    """Write a trace as JSON lines (header line + one line per record)."""
    own = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        header = {
            "format": "repro-trace",
            "version": _FORMAT_VERSION,
            "n_ranks": trace.n_ranks,
            "n_steps": trace.n_steps,
            "meta": _meta_safe(trace.meta),
        }
        fh.write(json.dumps(header) + "\n")
        for r in trace.records:
            fh.write(
                json.dumps(
                    {
                        "rank": r.rank,
                        "step": r.step,
                        "kind": r.kind.name,
                        "start": r.start,
                        "end": r.end,
                        "peer": r.peer,
                        "size": r.size,
                    }
                )
                + "\n"
            )
    finally:
        if own:
            fh.close()


def read_jsonl(source: "str | Path | TextIO") -> Trace:
    """Read a trace written by :func:`write_jsonl`.

    Raises
    ------
    ValueError
        On a missing/incompatible header or malformed records.
    """
    own = isinstance(source, (str, Path))
    fh: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        header_line = fh.readline()
        if not header_line.strip():
            raise ValueError("empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "repro-trace":
            raise ValueError(f"not a repro trace file (format={header.get('format')!r})")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {header.get('version')!r}; "
                f"this build reads version {_FORMAT_VERSION}"
            )
        records = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            obj = json.loads(line)
            try:
                records.append(
                    OpRecord(
                        rank=int(obj["rank"]),
                        step=int(obj["step"]),
                        kind=OpKind[obj["kind"]],
                        start=float(obj["start"]),
                        end=float(obj["end"]),
                        peer=int(obj.get("peer", -1)),
                        size=int(obj.get("size", 0)),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise ValueError(f"malformed trace record on line {lineno}: {exc}") from exc
        return Trace(
            n_ranks=int(header["n_ranks"]),
            n_steps=int(header["n_steps"]),
            records=records,
            meta=dict(header.get("meta", {})),
        )
    finally:
        if own:
            fh.close()


def write_csv(trace: Trace, target: "str | Path | TextIO") -> None:
    """Write the records as CSV (header: rank,step,kind,start,end,peer,size)."""
    own = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        fh.write("rank,step,kind,start,end,peer,size\n")
        for r in trace.records:
            fh.write(
                f"{r.rank},{r.step},{r.kind.name},{r.start!r},{r.end!r},{r.peer},{r.size}\n"
            )
    finally:
        if own:
            fh.close()
