"""One-off injected delays.

A *delay* in the paper's terminology is a long, isolated disturbance hitting
one rank at one point in time — the seed of an idle wave.  A
:class:`DelaySpec` pins down (rank, step, duration); helpers construct the
multi-wave injection patterns of Fig. 6 (same delay on every socket, half
duration on odd sockets, random durations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.topology import ProcessMapping

__all__ = ["DelaySpec", "delays_at_local_rank", "random_delays"]


@dataclass(frozen=True)
class DelaySpec:
    """A single injected delay.

    Parameters
    ----------
    rank:
        MPI rank receiving the delay.
    step:
        Time-step index (0-based) of the execution phase the delay extends.
    duration:
        Extra execution time in seconds.  The paper expresses delays in
        units of execution phases (e.g. "4.5 execution phases"); use
        ``duration = 4.5 * t_exec`` for that.
    """

    rank: int
    step: int
    duration: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")

    def in_phases(self, t_exec: float) -> float:
        """Delay duration expressed in units of execution phases."""
        if t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {t_exec}")
        return self.duration / t_exec


def delays_at_local_rank(
    mapping: ProcessMapping,
    local_rank: int,
    durations: "list[float] | np.ndarray",
    step: int = 0,
) -> list[DelaySpec]:
    """One delay per socket, at socket-local rank ``local_rank``.

    Reproduces the Fig. 6 injection pattern: "delays were injected on local
    rank 5 of every socket".  ``durations[s]`` is the delay on socket ``s``;
    sockets whose duration is 0 are skipped.

    Parameters
    ----------
    mapping:
        The process placement; determines which global rank is local rank
        ``local_rank`` of each socket.
    local_rank:
        Socket-local rank index receiving the delay.
    durations:
        Per-socket delay durations in seconds; length must equal the number
        of sockets in use.
    step:
        Time step of the injection (same for all sockets).
    """
    n_sockets = mapping.n_sockets_used()
    durations = list(durations)
    if len(durations) != n_sockets:
        raise ValueError(
            f"need {n_sockets} durations (one per socket in use), got {len(durations)}"
        )
    per_socket = mapping.ranks_per_socket()
    if not 0 <= local_rank < per_socket:
        raise ValueError(
            f"local_rank {local_rank} out of range [0, {per_socket}) for this mapping"
        )
    specs: list[DelaySpec] = []
    for socket, duration in enumerate(durations):
        if duration == 0.0:
            continue
        ranks = mapping.ranks_on_socket(socket)
        if local_rank >= len(ranks):
            raise ValueError(
                f"socket {socket} hosts only {len(ranks)} ranks; "
                f"local rank {local_rank} does not exist there"
            )
        specs.append(DelaySpec(rank=ranks[local_rank], step=step, duration=float(duration)))
    return specs


def random_delays(
    mapping: ProcessMapping,
    local_rank: int,
    rng: np.random.Generator,
    low: float,
    high: float,
    step: int = 0,
) -> list[DelaySpec]:
    """Random per-socket delays in ``[low, high]`` seconds (Fig. 6(c))."""
    if low < 0 or high < low:
        raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
    n_sockets = mapping.n_sockets_used()
    durations = rng.uniform(low, high, size=n_sockets)
    return delays_at_local_rank(mapping, local_rank, durations, step=step)
