"""Random delay campaigns: sustained stochastic injection.

Fig. 6(c) injects one round of random delays; Sec. IV-B notes that "delays
of different duration might be injected in random ways across the whole
communicator".  A :class:`DelayCampaign` generalizes that to a sustained
stochastic process — delays arriving over the whole run as a Poisson
process in (rank, step) space with random durations — which is the regime
of a production system suffering recurring long disturbances (cron storms,
GC pauses, page-fault bursts).

The accompanying analysis (``experiments/ext_campaign``) measures the
steady-state cost of such a delay climate and how background noise changes
it: with many interacting waves, cancellations destroy part of each
delay's idle budget, so the marginal cost of a delay *decreases* with the
injection rate.

Campaigns of many independent draws are orchestrated by the parallel
campaign runtime (:mod:`repro.runtime`): declare the grid with
:class:`repro.runtime.spec.SweepSpec`, execute with
:func:`repro.runtime.executor.run_campaign`, and pass each task's derived
integer seed straight to :meth:`DelayCampaign.draw` — integer seeds make
draws bit-reproducible across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.delay import DelaySpec

__all__ = ["DelayCampaign"]


@dataclass(frozen=True)
class DelayCampaign:
    """A stochastic schedule of one-off delays.

    Parameters
    ----------
    rate:
        Expected number of delays per rank per step (Poisson intensity).
        E.g. ``rate=0.01`` on 100 ranks × 20 steps yields ~20 delays.
    duration_low / duration_high:
        Uniform bounds of each delay's duration in seconds.
    """

    rate: float
    duration_low: float
    duration_high: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.duration_low < 0 or self.duration_high < self.duration_low:
            raise ValueError(
                f"need 0 <= duration_low <= duration_high, got "
                f"{self.duration_low}, {self.duration_high}"
            )

    def expected_count(self, n_ranks: int, n_steps: int) -> float:
        """Expected number of injected delays over a run."""
        return self.rate * n_ranks * n_steps

    def expected_injected_time(self, n_ranks: int, n_steps: int) -> float:
        """Expected total injected delay seconds over a run."""
        mean_duration = 0.5 * (self.duration_low + self.duration_high)
        return self.expected_count(n_ranks, n_steps) * mean_duration

    def draw(
        self,
        n_ranks: int,
        n_steps: int,
        rng: "np.random.Generator | int",
    ) -> tuple[DelaySpec, ...]:
        """Sample a concrete delay schedule for one run.

        ``rng`` is either a live :class:`numpy.random.Generator` or an
        integer seed, in which case the campaign constructs its own
        generator — the form campaign-runtime tasks use, since an integer
        travels across process boundaries while producing bit-identical
        schedules (see :mod:`repro.runtime`).

        At most one delay lands on any (rank, step) cell; multiple arrivals
        on one cell are merged by summing their durations (the cell's
        execution is extended either way).
        """
        if n_ranks < 1 or n_steps < 1:
            raise ValueError("n_ranks and n_steps must be >= 1")
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        elif not isinstance(rng, np.random.Generator):
            raise TypeError(
                f"rng must be a numpy Generator or an integer seed, "
                f"got {type(rng).__name__}"
            )
        counts = rng.poisson(self.rate, size=(n_ranks, n_steps))
        specs: list[DelaySpec] = []
        for rank, step in zip(*np.nonzero(counts)):
            n = int(counts[rank, step])
            duration = float(
                rng.uniform(self.duration_low, self.duration_high, size=n).sum()
            )
            if duration > 0:
                specs.append(DelaySpec(rank=int(rank), step=int(step), duration=duration))
        return tuple(specs)
