"""Processor-sharing simulation of memory-bandwidth saturation.

The motivating experiments of the paper (Figs. 1 and 2) use *data-bound*
workloads (STREAM triad, LBM).  On such codes the per-rank execution time is
not fixed: ranks on one socket share the memory interface, so when ``n``
ranks stream concurrently each gets roughly ``B_socket / n`` (capped by the
single-core bandwidth ``b_core``).  Desynchronization then *helps*: a rank
that computes while its socket neighbors wait in MPI gets more bandwidth,
which is exactly the "automatic overlap" mechanism that makes the measured
execution performance in Fig. 1(a) beat the naive model.

This module implements that mechanism as an event-driven processor-sharing
simulation:

- each execution phase streams ``work_bytes`` through the socket's memory
  interface at the instantaneous fair-share rate, followed by a
  contention-independent *serial tail* (per-phase noise and injected
  delays — a cron job does not consume memory bandwidth);
- communication follows the lockstep semantics of the fast engine: eager
  (receive waits for the sender's phase end + flight time) or rendezvous
  (both sides synchronize before the transfer).

The result reuses :class:`repro.sim.lockstep.LockstepResult`, so the whole
analysis layer applies unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.sim.delay import DelaySpec
from repro.sim.lockstep import LockstepResult
from repro.sim.noise import NoiseModel, NoNoise
from repro.sim.program import CommPattern
from repro.sim.topology import ProcessMapping

__all__ = ["SaturationConfig", "simulate_saturation"]


@dataclass(frozen=True)
class SaturationConfig:
    """Parameters of a data-bound lockstep run under bandwidth contention.

    Parameters
    ----------
    mapping:
        Rank placement; sockets are the contention domains.
    n_steps:
        Number of bulk-synchronous time steps.
    work_bytes:
        Memory traffic per rank per execution phase.  Scalar, per-rank
        vector, or full ``[n_ranks, n_steps]`` matrix.
    b_core:
        Single-core sustainable memory bandwidth (bytes/s).
    b_socket:
        Socket-level saturated bandwidth (bytes/s); e.g. 40 GB/s on the
        paper's Ivy Bridge sockets.
    t_serial:
        Contention-independent seconds per phase (e.g. in-core compute).
    noise / delays:
        Extra serial time per phase: fine-grained noise and one-off delays.
    pattern / msg_size:
        Communication pattern along the rank chain.
    t_flight:
        One-way message flight time in seconds.
    o_post:
        CPU overhead to post the sends of one phase (lumped).
    rendezvous:
        If True, a rank's Waitall also waits for its *receivers* to arrive
        (handshake) before the transfer, like the large-message protocol.
    seed:
        Seed for the noise draw.
    """

    mapping: ProcessMapping
    n_steps: int
    work_bytes: float | np.ndarray
    b_core: float
    b_socket: float
    t_serial: float = 0.0
    noise: NoiseModel = field(default_factory=NoNoise)
    delays: tuple[DelaySpec, ...] = ()
    pattern: CommPattern = field(default_factory=lambda: CommPattern())
    msg_size: int = 8192
    t_flight: float = 2e-6
    o_post: float = 1e-6
    rendezvous: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.b_core <= 0 or self.b_socket <= 0:
            raise ValueError("bandwidths must be > 0")
        if self.t_serial < 0 or self.t_flight < 0 or self.o_post < 0:
            raise ValueError("times must be >= 0")

    @property
    def n_ranks(self) -> int:
        return self.mapping.n_ranks

    def work_matrix(self) -> np.ndarray:
        """Normalize ``work_bytes`` to a ``[n_ranks, n_steps]`` matrix."""
        w = np.asarray(self.work_bytes, dtype=float)
        if w.ndim == 0:
            w = np.full((self.n_ranks, self.n_steps), float(w))
        elif w.ndim == 1:
            if w.shape[0] != self.n_ranks:
                raise ValueError(f"work vector length {w.shape[0]} != n_ranks {self.n_ranks}")
            w = np.repeat(w[:, None], self.n_steps, axis=1)
        elif w.shape != (self.n_ranks, self.n_steps):
            raise ValueError(
                f"work matrix shape {w.shape} != ({self.n_ranks}, {self.n_steps})"
            )
        if np.any(w < 0):
            raise ValueError("work_bytes must be >= 0")
        return w


class _Phase(Enum):
    STREAM = 0  # consuming socket bandwidth
    TAIL = 1  # serial tail (noise/delay), no bandwidth use
    WAIT = 2  # in Waitall
    BLOCKED = 3  # waiting for previous step's dependencies before computing


def simulate_saturation(cfg: SaturationConfig, rng: np.random.Generator | None = None) -> LockstepResult:
    """Run the processor-sharing simulation; returns dense timing matrices."""
    if rng is None:
        rng = np.random.default_rng(cfg.seed)

    n = cfg.n_ranks
    steps = cfg.n_steps
    work = cfg.work_matrix()
    serial = np.full((n, steps), cfg.t_serial, dtype=float)
    serial += cfg.noise.sample(rng, (n, steps))
    for spec in cfg.delays:
        if spec.rank >= n or spec.step >= steps:
            raise ValueError(f"delay {spec} outside the configured run")
        serial[spec.rank, spec.step] += spec.duration

    # Communication dependencies per rank (who must finish phase k before my
    # Waitall of step k can complete).  Under bidirectional rendezvous the
    # progress-coupling rule (σ = 2, see repro.sim.engine) widens the
    # dependency window to the partners' partners.
    from repro.sim.program import Direction

    dep_sources: list[list[int]] = []
    for rank in range(n):
        deps = set(cfg.pattern.recv_sources(rank, n))
        if cfg.rendezvous:
            deps.update(cfg.pattern.send_targets(rank, n))
            if cfg.pattern.direction == Direction.BIDIRECTIONAL:
                for p in list(deps):
                    deps.update(cfg.pattern.recv_sources(p, n))
                    deps.update(cfg.pattern.send_targets(p, n))
                deps.discard(rank)
        dep_sources.append(sorted(deps))
    # Reverse index: when rank j finishes phase k, whom to notify.
    notifies: list[list[int]] = [[] for _ in range(n)]
    for rank in range(n):
        for src in dep_sources[rank]:
            notifies[src].append(rank)

    exec_start = np.zeros((n, steps))
    exec_end = np.zeros((n, steps))
    post_end = np.zeros((n, steps))
    completion = np.zeros((n, steps))

    socket_of = np.array([cfg.mapping.socket_of(r) for r in range(n)])
    n_sockets = int(socket_of.max()) + 1
    active: list[set[int]] = [set() for _ in range(n_sockets)]

    phase = [_Phase.BLOCKED] * n
    step_of = [0] * n
    remaining = np.zeros(n)  # bytes left to stream in the current phase
    last_update = np.zeros(n)  # when `remaining` was last drained
    rate = np.zeros(n)
    missing_deps = [0] * n  # outstanding dependency notifications for current step
    done = [False] * n

    # Event heap: (time, seq, rank, kind).  Lazy invalidation via epoch.
    heap: list[tuple[float, int, int, str]] = []
    seq = 0
    epoch = [0] * n

    def push(t: float, rank: int, kind: str) -> None:
        nonlocal seq
        seq += 1
        heapq.heappush(heap, (t, seq, rank, kind))

    def socket_rate(s: int) -> float:
        k = len(active[s])
        if k == 0:
            return 0.0
        return min(cfg.b_core, cfg.b_socket / k)

    def rebalance(s: int, now: float) -> None:
        """Drain progress and reschedule completion estimates on socket ``s``."""
        new_rate = socket_rate(s)
        for r in active[s]:
            remaining[r] = max(0.0, remaining[r] - rate[r] * (now - last_update[r]))
            last_update[r] = now
            rate[r] = new_rate
            epoch[r] += 1
            if new_rate > 0:
                push(now + remaining[r] / new_rate, r, f"stream:{epoch[r]}")

    def start_phase(r: int, now: float) -> None:
        k = step_of[r]
        exec_start[r, k] = now
        phase[r] = _Phase.STREAM
        remaining[r] = work[r, k]
        last_update[r] = now
        s = socket_of[r]
        active[s].add(r)
        rebalance(s, now)
        if remaining[r] == 0.0:
            # Degenerate pure-serial phase: finish streaming immediately.
            pass  # the rebalance above scheduled an event at `now`

    def finish_stream(r: int, now: float) -> None:
        s = socket_of[r]
        active[s].discard(r)
        phase[r] = _Phase.TAIL
        rebalance(s, now)
        push(now + serial[r, step_of[r]], r, "tail")

    arrivals_pending: list[dict[int, int]] = [dict() for _ in range(n)]
    # arrivals_pending[r][k] = number of peers whose phase-k end is still unknown
    peer_end = exec_end  # alias for clarity

    def finish_phase(r: int, now: float) -> None:
        k = step_of[r]
        exec_end[r, k] = now
        post_end[r, k] = now + cfg.o_post
        phase[r] = _Phase.WAIT
        # Notify dependents that our phase-k end time is now known.
        for dep in notifies[r]:
            pend = arrivals_pending[dep]
            pend[k] = pend.get(k, len(dep_sources[dep])) - 1
            if pend[k] == 0 and step_of[dep] == k and phase[dep] == _Phase.WAIT:
                complete_wait(dep, k)
        pend = arrivals_pending[r]
        if pend.get(k, len(dep_sources[r])) == 0 or not dep_sources[r]:
            complete_wait(r, k)

    def complete_wait(r: int, k: int) -> None:
        """All of rank r's step-k dependencies are known: compute Waitall end."""
        t = post_end[r, k]
        for src in dep_sources[r]:
            if cfg.rendezvous:
                t = max(t, max(peer_end[src, k], peer_end[r, k]) + cfg.t_flight)
            else:
                t = max(t, peer_end[src, k] + cfg.t_flight)
        completion[r, k] = t
        if k + 1 < steps:
            step_of[r] = k + 1
            phase[r] = _Phase.BLOCKED
            push(t, r, "start")
        else:
            done[r] = True
            phase[r] = _Phase.BLOCKED

    # Kick off step 0 on all ranks at t=0.
    for r in range(n):
        push(0.0, r, "start")

    while heap:
        now, _, r, kind = heapq.heappop(heap)
        if kind.startswith("stream:"):
            if phase[r] != _Phase.STREAM or int(kind.split(":")[1]) != epoch[r]:
                continue  # stale estimate
            finish_stream(r, now)
        elif kind == "tail":
            finish_phase(r, now)
        elif kind == "start":
            start_phase(r, now)
        else:  # pragma: no cover
            raise RuntimeError(f"unknown event kind {kind}")

    if not all(done):
        raise RuntimeError("saturation simulation did not complete all ranks")

    return LockstepResult(
        exec_start=exec_start,
        exec_end=exec_end,
        post_end=post_end,
        completion=completion,
        meta={
            "engine": "saturation",
            "b_core": cfg.b_core,
            "b_socket": cfg.b_socket,
            "t_serial": cfg.t_serial,
            "t_flight": cfg.t_flight,
            "pattern": cfg.pattern,
            "rendezvous": cfg.rendezvous,
            "noise_mean": cfg.noise.mean(),
            "delays": cfg.delays,
            "seed": cfg.seed,
        },
    )
