"""Collective communication patterns (paper outlook, Sec. VII).

The paper's conclusion names its Eq. 2 speed model "a starting point for
the investigation of collective communication primitives".  This module
takes that step on the simulator: bulk-synchronous programs whose
communication phase is a *collective* implemented from the classic
point-to-point round schedules:

- **dissemination barrier** (Hensgen/Finkel/Manber): round ``k`` sends to
  ``(i + 2^k) mod P`` — ceil(log2 P) rounds, works for any P;
- **recursive-doubling allreduce**: round ``k`` exchanges with partner
  ``i XOR 2^k`` — log2 P rounds, P must be a power of two;
- **ring allreduce**: 2(P-1) rounds of neighbor exchange (reduce-scatter +
  allgather), the bandwidth-optimal large-message algorithm;
- **binomial-tree broadcast**: round ``k`` has ranks below ``2^k`` send to
  ``i + 2^k``.

A one-off delay interacts with a collective very differently from the
paper's point-to-point chains: logarithmic schedules couple the whole
communicator within log2 P rounds, so the "idle wave" reaches *all* ranks
after a single step — exponential spreading instead of the linear
``σ·d/(T_exec + T_comm)`` front (measured by ``experiments/ext_collectives``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.sim.delay import DelaySpec
from repro.sim.noise import NoiseModel, NoNoise
from repro.sim.program import Op, OpKind, Program

__all__ = [
    "Collective",
    "CollectiveConfig",
    "barrier_rounds",
    "recursive_doubling_rounds",
    "ring_allreduce_rounds",
    "tree_bcast_rounds",
    "build_collective_program",
]


class Collective(Enum):
    """Supported collective algorithms."""

    BARRIER = "barrier"  # dissemination
    ALLREDUCE_RECDOUB = "allreduce_recdoub"
    ALLREDUCE_RING = "allreduce_ring"
    BCAST_TREE = "bcast_tree"


def barrier_rounds(n_ranks: int) -> list[list[tuple[int, int]]]:
    """Dissemination-barrier schedule: list of rounds of (src, dst) pairs.

    Every rank participates in every round; ceil(log2 P) rounds total.
    """
    if n_ranks < 2:
        raise ValueError(f"n_ranks must be >= 2, got {n_ranks}")
    rounds = []
    k = 1
    while k < n_ranks:
        rounds.append([(i, (i + k) % n_ranks) for i in range(n_ranks)])
        k *= 2
    return rounds


def recursive_doubling_rounds(n_ranks: int) -> list[list[tuple[int, int]]]:
    """Recursive-doubling exchange schedule; requires a power-of-two P."""
    if n_ranks < 2 or n_ranks & (n_ranks - 1):
        raise ValueError(f"recursive doubling needs a power-of-two rank count, got {n_ranks}")
    rounds = []
    k = 1
    while k < n_ranks:
        # Full exchange: both directions of each partner pair.
        rounds.append([(i, i ^ k) for i in range(n_ranks)])
        k *= 2
    return rounds


def ring_allreduce_rounds(n_ranks: int) -> list[list[tuple[int, int]]]:
    """Ring allreduce: 2(P-1) rounds of send-to-next/receive-from-previous."""
    if n_ranks < 2:
        raise ValueError(f"n_ranks must be >= 2, got {n_ranks}")
    one_round = [(i, (i + 1) % n_ranks) for i in range(n_ranks)]
    return [list(one_round) for _ in range(2 * (n_ranks - 1))]


def tree_bcast_rounds(n_ranks: int, root: int = 0) -> list[list[tuple[int, int]]]:
    """Binomial-tree broadcast from ``root``: round k doubles the holders."""
    if n_ranks < 2:
        raise ValueError(f"n_ranks must be >= 2, got {n_ranks}")
    if not 0 <= root < n_ranks:
        raise IndexError(f"root {root} out of range [0, {n_ranks})")
    rounds = []
    k = 1
    while k < n_ranks:
        pairs = []
        for i in range(k):
            j = i + k
            if j < n_ranks:
                # Positions are relative to the root.
                pairs.append(((root + i) % n_ranks, (root + j) % n_ranks))
        rounds.append(pairs)
        k *= 2
    return rounds


_SCHEDULES = {
    Collective.BARRIER: barrier_rounds,
    Collective.ALLREDUCE_RECDOUB: recursive_doubling_rounds,
    Collective.ALLREDUCE_RING: ring_allreduce_rounds,
    Collective.BCAST_TREE: tree_bcast_rounds,
}


@dataclass(frozen=True)
class CollectiveConfig:
    """Bulk-synchronous program whose comm phase is a collective."""

    n_ranks: int
    n_steps: int
    collective: Collective = Collective.BARRIER
    t_exec: float = 3e-3
    msg_size: int = 8192
    noise: NoiseModel = field(default_factory=NoNoise)
    delays: tuple[DelaySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError(f"n_ranks must be >= 2, got {self.n_ranks}")
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {self.t_exec}")
        for spec in self.delays:
            if spec.rank >= self.n_ranks or spec.step >= self.n_steps:
                raise ValueError(f"delay {spec} outside the configured run")

    def rounds(self) -> list[list[tuple[int, int]]]:
        """The collective's point-to-point round schedule."""
        return _SCHEDULES[self.collective](self.n_ranks)


def build_collective_program(
    cfg: CollectiveConfig, rng: np.random.Generator | None = None
) -> Program:
    """Build per-rank op lists: COMP, then one Isend/Irecv/Waitall per round.

    Rounds are separated by Waitalls (each round's receive must complete
    before the next round's data is sent — the semantics of staged
    collective algorithms).  Tags encode (step, round) so matching is
    unambiguous.
    """
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    times = np.full((cfg.n_ranks, cfg.n_steps), cfg.t_exec)
    times += cfg.noise.sample(rng, (cfg.n_ranks, cfg.n_steps))
    for spec in cfg.delays:
        times[spec.rank, spec.step] += spec.duration

    rounds = cfg.rounds()
    n_rounds = len(rounds)
    ops: list[list[Op]] = [[] for _ in range(cfg.n_ranks)]
    for step in range(cfg.n_steps):
        for rank in range(cfg.n_ranks):
            ops[rank].append(
                Op(kind=OpKind.COMP, duration=float(times[rank, step]), step=step)
            )
        for r_idx, pairs in enumerate(rounds):
            tag = step * n_rounds + r_idx
            participating: set[int] = set()
            for src, dst in pairs:
                ops[dst].append(
                    Op(kind=OpKind.IRECV, peer=src, size=cfg.msg_size, tag=tag, step=step)
                )
                ops[src].append(
                    Op(kind=OpKind.ISEND, peer=dst, size=cfg.msg_size, tag=tag, step=step)
                )
                participating.add(src)
                participating.add(dst)
            for rank in participating:
                ops[rank].append(Op(kind=OpKind.WAITALL, step=step))
    return Program(
        ops=ops,
        n_steps=cfg.n_steps,
        meta={
            "t_exec": cfg.t_exec,
            "msg_size": cfg.msg_size,
            "collective": cfg.collective.value,
            "n_rounds": n_rounds,
            "noise_mean": cfg.noise.mean(),
            "delays": cfg.delays,
            "seed": cfg.seed,
        },
    )
