"""Hierarchical machine topology and rank-to-hardware mapping.

Clusters of dual-socket multicore nodes expose a hierarchy — core, socket
(= contention domain for memory bandwidth), node, network — and the
communication characteristics between two MPI ranks depend on where the two
ranks live relative to each other in that hierarchy (Sec. II-B of the
paper).  This module provides:

- :class:`MachineTopology` — the static shape of the machine,
- :class:`CommDomain` — the classification of a rank pair,
- :class:`ProcessMapping` — block-wise placement of ``n`` MPI ranks onto the
  machine with ``ppn`` processes per node, mirroring the compact pinning the
  paper uses ("process-core affinity was enforced").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["CommDomain", "MachineTopology", "ProcessMapping"]


class CommDomain(IntEnum):
    """Classification of the communication path between two ranks.

    The numeric order is meaningful: larger values cross more hierarchy
    levels and are (on every real machine) slower.
    """

    SELF = 0
    INTRA_SOCKET = 1
    INTER_SOCKET = 2
    INTER_NODE = 3


@dataclass(frozen=True)
class MachineTopology:
    """Static shape of a homogeneous cluster.

    Parameters
    ----------
    cores_per_socket:
        Physical cores on one socket (contention domain).
    sockets_per_node:
        Sockets per compute node.
    n_nodes:
        Number of compute nodes available.
    smt:
        Hardware threads per physical core.  The paper's systems have
        ``smt=2``; whether SMT is *used* is a property of the machine
        configuration (see :mod:`repro.cluster`), not of the topology.
    """

    cores_per_socket: int = 10
    sockets_per_node: int = 2
    n_nodes: int = 1
    smt: int = 1

    def __post_init__(self) -> None:
        if self.cores_per_socket < 1:
            raise ValueError(f"cores_per_socket must be >= 1, got {self.cores_per_socket}")
        if self.sockets_per_node < 1:
            raise ValueError(f"sockets_per_node must be >= 1, got {self.sockets_per_node}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.smt < 1:
            raise ValueError(f"smt must be >= 1, got {self.smt}")

    @property
    def cores_per_node(self) -> int:
        """Physical cores on one node."""
        return self.cores_per_socket * self.sockets_per_node

    @property
    def total_cores(self) -> int:
        """Physical cores in the whole machine."""
        return self.cores_per_node * self.n_nodes

    @property
    def total_hw_threads(self) -> int:
        """Hardware threads in the whole machine (incl. SMT)."""
        return self.total_cores * self.smt


@dataclass(frozen=True)
class ProcessMapping:
    """Block-wise placement of MPI ranks onto a :class:`MachineTopology`.

    Ranks fill nodes in order; within a node they fill sockets in order,
    one rank per physical core.  ``ppn`` (processes per node) may be smaller
    than the number of cores per node, in which case the ranks of one node
    are distributed round-robin over its sockets *in blocks*, i.e. the first
    ``ppn // sockets_per_node`` ranks of a node land on socket 0, and so on.
    With ``ppn=1`` each rank has a full node to itself (the configuration of
    Figs. 4, 5 and 7 — "one process per node").

    Parameters
    ----------
    topology:
        The machine shape.
    n_ranks:
        Number of MPI ranks to place.
    ppn:
        Processes per node.  Defaults to the number of physical cores per
        node (compact filling).
    """

    topology: MachineTopology
    n_ranks: int
    ppn: int = 0  # 0 means "cores per node"

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        ppn = self.ppn or self.topology.cores_per_node
        if ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {ppn}")
        if ppn > self.topology.cores_per_node * self.topology.smt:
            raise ValueError(
                f"ppn={ppn} exceeds hardware threads per node "
                f"({self.topology.cores_per_node * self.topology.smt})"
            )
        needed_nodes = -(-self.n_ranks // ppn)  # ceil division
        if needed_nodes > self.topology.n_nodes:
            raise ValueError(
                f"{self.n_ranks} ranks at ppn={ppn} need {needed_nodes} nodes, "
                f"machine has {self.topology.n_nodes}"
            )
        object.__setattr__(self, "ppn", ppn)

    # ------------------------------------------------------------------
    # placement queries
    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank(self, rank: int) -> int:
        """Rank index within its node (0 .. ppn-1)."""
        self._check_rank(rank)
        return rank % self.ppn

    def socket_of(self, rank: int) -> int:
        """Global socket index hosting ``rank``.

        Within a node, local ranks fill sockets in contiguous blocks of
        ``ceil(ppn / sockets_per_node)``.
        """
        self._check_rank(rank)
        spn = self.topology.sockets_per_node
        per_socket = -(-self.ppn // spn)  # ceil
        local_socket = min(self.local_rank(rank) // per_socket, spn - 1)
        return self.node_of(rank) * spn + local_socket

    def socket_local_rank(self, rank: int) -> int:
        """Rank index within its socket (0-based)."""
        spn = self.topology.sockets_per_node
        per_socket = -(-self.ppn // spn)
        return self.local_rank(rank) % per_socket

    def ranks_per_socket(self) -> int:
        """Number of ranks placed on each (fully occupied) socket."""
        spn = self.topology.sockets_per_node
        return -(-self.ppn // spn)

    def n_sockets_used(self) -> int:
        """Number of distinct sockets that host at least one rank."""
        return self.socket_of(self.n_ranks - 1) + 1

    def n_nodes_used(self) -> int:
        """Number of distinct nodes that host at least one rank."""
        return self.node_of(self.n_ranks - 1) + 1

    def ranks_on_socket(self, socket: int) -> list[int]:
        """All ranks hosted on global socket index ``socket``."""
        return [r for r in range(self.n_ranks) if self.socket_of(r) == socket]

    def domain(self, a: int, b: int) -> CommDomain:
        """Classify the communication path between ranks ``a`` and ``b``."""
        self._check_rank(a)
        self._check_rank(b)
        if a == b:
            return CommDomain.SELF
        if self.node_of(a) != self.node_of(b):
            return CommDomain.INTER_NODE
        if self.socket_of(a) != self.socket_of(b):
            return CommDomain.INTER_SOCKET
        return CommDomain.INTRA_SOCKET

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")


def single_switch_mapping(n_ranks: int, ppn: int, *, cores_per_socket: int = 10,
                          sockets_per_node: int = 2, smt: int = 1) -> ProcessMapping:
    """Convenience: a mapping on just enough identical nodes behind one switch.

    Mirrors the paper's setup where "multi-node experiments were run on a
    homogeneous set of nodes connected to a single leaf switch".
    """
    n_nodes = -(-n_ranks // ppn)
    topo = MachineTopology(
        cores_per_socket=cores_per_socket,
        sockets_per_node=sockets_per_node,
        n_nodes=n_nodes,
        smt=smt,
    )
    return ProcessMapping(topology=topo, n_ranks=n_ranks, ppn=ppn)
