"""Vectorized fast path for the standard lockstep pattern.

For the bulk-synchronous programs built by
:func:`repro.sim.program.build_lockstep_program` *with a uniform network*
(every message has the same flight time and overheads — the paper's
"flat network infrastructure"), the per-step completion times obey a simple
recurrence over ranks that can be evaluated with :mod:`numpy` in O(N·d) per
step instead of walking a DAG.  This makes runs like the 100-rank × 10⁴-step
LBM timeline (Fig. 2) tractable.

The recurrence mirrors the DAG engine exactly (see
``tests/properties/test_engine_equivalence.py`` for the machine-checked
contract):

- ``exec_end[i] = c_prev[i] + exec_time[i, k]``
- sends are posted back-to-back, each costing ``o_send``; the *p*-th send
  ends at ``exec_end + p * o_send``
- eager receive completion: ``max(sender's send end + flight, exec_end[i])
  + o_recv``
- rendezvous transfer completion: ``max(sender's send end, exec_end[i])
  + flight + o_recv`` — and it blocks *both* sides' Waitall
- ``c[i] = max(post_end[i], all request completions)``
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.mpi import Protocol, select_protocol
from repro.sim.network import NetworkModel, UniformNetwork
from repro.sim.program import (
    CommPattern,
    Direction,
    LockstepConfig,
    OpKind,
    build_exec_times,
)
from repro.sim.topology import CommDomain
from repro.sim.trace import OpRecord, Trace

__all__ = ["LockstepResult", "simulate_lockstep"]


@dataclass
class LockstepResult:
    """Dense timing matrices from a lockstep-engine run.

    All arrays are ``[n_ranks, n_steps]`` wall-clock seconds.
    """

    exec_start: np.ndarray
    exec_end: np.ndarray
    post_end: np.ndarray  # all sends posted; rank enters Waitall
    completion: np.ndarray  # Waitall returned
    meta: dict = field(default_factory=dict)

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[1]

    def idle_matrix(self) -> np.ndarray:
        """Seconds spent inside each step's Waitall."""
        return self.completion - self.post_end

    def total_runtime(self) -> float:
        """Wall-clock completion of the last rank."""
        return float(self.completion[:, -1].max())

    def to_trace(self) -> Trace:
        """Convert to a :class:`~repro.sim.trace.Trace` (COMP + WAITALL records).

        The per-message ISEND/IRECV records are not materialized — the
        analysis layer only consumes execution and wait timings.
        """
        records: list[OpRecord] = []
        for rank in range(self.n_ranks):
            for step in range(self.n_steps):
                records.append(
                    OpRecord(
                        rank=rank,
                        step=step,
                        kind=OpKind.COMP,
                        start=float(self.exec_start[rank, step]),
                        end=float(self.exec_end[rank, step]),
                    )
                )
                records.append(
                    OpRecord(
                        rank=rank,
                        step=step,
                        kind=OpKind.WAITALL,
                        start=float(self.post_end[rank, step]),
                        end=float(self.completion[rank, step]),
                    )
                )
        return Trace(
            n_ranks=self.n_ranks,
            n_steps=self.n_steps,
            records=records,
            meta={**self.meta, "engine": "lockstep"},
        )


def _shift(arr: np.ndarray, offset: int, periodic: bool) -> np.ndarray:
    """``out[i] = arr[i + offset]``; out-of-range entries become -inf."""
    if periodic:
        return np.roll(arr, -offset)
    out = np.full_like(arr, -np.inf)
    n = arr.shape[0]
    if offset >= 0:
        if offset < n:
            out[: n - offset] = arr[offset:]
    else:
        if -offset < n:
            out[-offset:] = arr[: n + offset]
    return out


def _send_positions(pattern: CommPattern, n_ranks: int) -> dict[int, np.ndarray]:
    """Per-offset 1-based send position for every rank (NaN where absent).

    Sends are posted in the order :meth:`CommPattern.send_targets` returns
    them; at open-chain boundaries missing partners shift later positions
    forward, which this mirrors exactly.
    """
    offsets: list[int] = []
    for k in range(1, pattern.distance + 1):
        if pattern.direction == Direction.BIDIRECTIONAL:
            offsets.extend((+k, -k))
        else:
            offsets.append(+k)
    pos: dict[int, np.ndarray] = {o: np.full(n_ranks, np.nan) for o in offsets}
    for rank in range(n_ranks):
        p = 0
        seen: set[int] = set()
        for off in offsets:
            tgt = rank + off
            if pattern.periodic:
                tgt %= n_ranks
            elif not 0 <= tgt < n_ranks:
                continue
            if tgt == rank or tgt in seen:
                continue  # aliased partner on a small periodic ring
            seen.add(tgt)
            p += 1
            pos[off][rank] = p
    return pos


def simulate_lockstep(
    cfg: LockstepConfig,
    exec_times: np.ndarray | None = None,
    network: NetworkModel | None = None,
    domain: CommDomain = CommDomain.INTER_NODE,
    protocol: Protocol = Protocol.AUTO,
    eager_limit: int | None = None,
    rng: np.random.Generator | None = None,
) -> LockstepResult:
    """Simulate a lockstep program with a uniform network, vectorized.

    Parameters
    ----------
    cfg:
        The experiment parameters (ranks, steps, pattern, noise, delays).
    exec_times:
        Optional pre-built ``[n_ranks, n_steps]`` execution durations; built
        from ``cfg`` (with its seed) when omitted.
    network:
        Transfer-time model; all messages use ``domain``.  Defaults to
        :class:`~repro.sim.network.UniformNetwork`.
    protocol, eager_limit:
        Protocol forcing / switch point, as in the DAG engine.
    """
    if network is None:
        network = UniformNetwork()
    if exec_times is None:
        exec_times = build_exec_times(cfg, rng)
    exec_times = np.asarray(exec_times, dtype=float)
    if exec_times.shape != (cfg.n_ranks, cfg.n_steps):
        raise ValueError(
            f"exec_times shape {exec_times.shape} != ({cfg.n_ranks}, {cfg.n_steps})"
        )

    from repro.sim.mpi import DEFAULT_EAGER_LIMIT

    limit = DEFAULT_EAGER_LIMIT if eager_limit is None else eager_limit
    proto = select_protocol(cfg.msg_size, limit, protocol)

    n = cfg.n_ranks
    pattern = cfg.pattern
    flight = network.transfer_time(cfg.msg_size, domain)
    o_send = network.send_overhead(domain)
    o_recv = network.recv_overhead(domain)

    spos = _send_positions(pattern, n)
    # Number of sends each rank posts (for post_end).
    n_sends = np.zeros(n)
    for off, arr in spos.items():
        n_sends += np.isfinite(arr)

    # Receive offsets: rank i receives from i+o iff rank i+o sends to i,
    # i.e. the sender's offset is -o.
    recv_offsets = [-o for o in spos]

    exec_start = np.zeros((n, cfg.n_steps))
    exec_end = np.zeros((n, cfg.n_steps))
    post_end = np.zeros((n, cfg.n_steps))
    completion = np.zeros((n, cfg.n_steps))

    c_prev = np.zeros(n)
    for k in range(cfg.n_steps):
        e_end = c_prev + exec_times[:, k]
        p_end = e_end + n_sends * o_send
        cand = p_end.copy()

        for o in recv_offsets:
            sender_off = -o  # the sender's send offset towards us
            sender_pos = _shift(spos[sender_off], o, pattern.periodic)
            sender_e_end = _shift(e_end, o, pattern.periodic)
            with np.errstate(invalid="ignore"):
                send_end = sender_e_end + sender_pos * o_send
                if proto == Protocol.EAGER:
                    c_in = np.maximum(send_end + flight, e_end) + o_recv
                else:
                    c_in = np.maximum(send_end, e_end) + flight + o_recv
            # NaN positions (no such partner) must not contribute.
            c_in = np.where(np.isnan(c_in) | np.isinf(sender_e_end), -np.inf, c_in)
            cand = np.maximum(cand, c_in)

        if proto == Protocol.RENDEZVOUS:
            # Outgoing transfers also block the sender's Waitall.
            for o, pos in spos.items():
                recv_e_end = _shift(e_end, o, pattern.periodic)
                with np.errstate(invalid="ignore"):
                    c_out = np.maximum(e_end + pos * o_send, recv_e_end) + flight + o_recv
                c_out = np.where(np.isnan(c_out) | np.isinf(recv_e_end), -np.inf, c_out)
                cand = np.maximum(cand, c_out)

            if pattern.direction == Direction.BIDIRECTIONAL:
                # Progress coupling (σ = 2 of Eq. 2): each pair's transfers
                # also wait for the posting-complete times of both endpoints'
                # rendezvous partners — mirrors the DAG engine's coupling
                # edges.  relief[i] = max over i's partners p of post_end[p].
                relief = np.full(n, -np.inf)
                for o in spos:
                    partner_post = _shift(p_end, o, pattern.periodic)
                    relief = np.maximum(relief, partner_post)
                for o in spos:
                    partner_exists = np.isfinite(_shift(e_end, o, pattern.periodic))
                    partner_relief = _shift(relief, o, pattern.periodic)
                    pair_relief = np.maximum(relief, partner_relief) + flight + o_recv
                    cand = np.maximum(
                        cand, np.where(partner_exists, pair_relief, -np.inf)
                    )

        exec_start[:, k] = c_prev
        exec_end[:, k] = e_end
        post_end[:, k] = p_end
        completion[:, k] = cand
        c_prev = cand

    return LockstepResult(
        exec_start=exec_start,
        exec_end=exec_end,
        post_end=post_end,
        completion=completion,
        meta={
            "t_exec": cfg.t_exec,
            "msg_size": cfg.msg_size,
            "pattern": pattern,
            "protocol": proto.value,
            "flight": flight,
            "o_send": o_send,
            "o_recv": o_recv,
            "noise_mean": cfg.noise.mean(),
            "delays": cfg.delays,
            "seed": cfg.seed,
        },
    )
