"""Batched, hierarchy-aware vectorized engine for the lockstep pattern.

For the bulk-synchronous programs built by
:func:`repro.sim.program.build_lockstep_program`, the per-step completion
times obey a simple recurrence over ranks that can be evaluated with
:mod:`numpy` in O(N·d) per step instead of walking a DAG.  This makes runs
like the 100-rank × 10⁴-step LBM timeline (Fig. 2) tractable.

Two generalizations widen the fast path beyond the original flat-network
engine:

- **hierarchy** — a :class:`~repro.sim.topology.ProcessMapping` plus a
  per-domain :class:`~repro.sim.network.NetworkModel` give every message
  its own flight time and overheads depending on where the two endpoints
  live (intra-socket / inter-socket / inter-node, Sec. II-B).  Because the
  lockstep pattern only ever connects rank ``i`` to ``i ± k``, the
  per-message parameters collapse to one ``[n_ranks]`` array per neighbor
  offset, and the recurrence stays fully vectorized.
- **batching** — :func:`simulate_lockstep_batch` accepts a
  ``[B, n_ranks, n_steps]`` stack of execution-time matrices (e.g. B draws
  of a random delay campaign) and simulates all B runs as one
  ``(B, n_ranks)``-shaped recurrence.  Every operation is elementwise
  along the batch axis, so each slice of the result is **bit-identical**
  to the corresponding unbatched run — the property the campaign runtime's
  content-addressed cache relies on (see ``tests/properties/``).

The recurrence mirrors the DAG engine exactly (see
``tests/properties/test_engine_equivalence.py`` and
``tests/properties/test_hierarchy_equivalence.py`` for the machine-checked
contract):

- ``exec_end[i] = c_prev[i] + exec_time[i, k]``
- sends are posted back-to-back in pattern order, the *p*-th send ending
  after the cumulative send overheads of sends ``1..p``
- eager receive completion: ``max(sender's send end + flight, exec_end[i])
  + o_recv``
- rendezvous transfer completion: ``max(sender's send end, exec_end[i])
  + flight + o_recv`` — and it blocks *both* sides' Waitall
- ``c[i] = max(post_end[i], all request completions)``
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.sim.mpi import Protocol, select_protocol
from repro.sim.network import NetworkModel, UniformNetwork
from repro.sim.program import (
    CommPattern,
    Direction,
    LockstepConfig,
    build_exec_times,
)
from repro.sim.topology import CommDomain, ProcessMapping
from repro.sim.trace import Trace

__all__ = [
    "BatchedLockstepResult",
    "LockstepResult",
    "simulate_lockstep",
    "simulate_lockstep_batch",
]


@dataclass
class LockstepResult:
    """Dense timing matrices from a lockstep-engine run.

    All arrays are ``[n_ranks, n_steps]`` wall-clock seconds.
    """

    exec_start: np.ndarray
    exec_end: np.ndarray
    post_end: np.ndarray  # all sends posted; rank enters Waitall
    completion: np.ndarray  # Waitall returned
    meta: dict = field(default_factory=dict)

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[1]

    def idle_matrix(self) -> np.ndarray:
        """Seconds spent inside each step's Waitall."""
        return self.completion - self.post_end

    def total_runtime(self) -> float:
        """Wall-clock completion of the last rank."""
        return float(self.completion[:, -1].max())

    def to_trace(self) -> Trace:
        """Convert to a :class:`~repro.sim.trace.Trace` (COMP + WAITALL records).

        The per-message ISEND/IRECV records are not materialized — the
        analysis layer only consumes execution and wait timings.
        """
        return Trace.from_matrices(
            exec_start=self.exec_start,
            exec_end=self.exec_end,
            wait_start=self.post_end,
            completion=self.completion,
            meta={**self.meta, "engine": "lockstep"},
        )


@dataclass
class BatchedLockstepResult:
    """Timing matrices of B independent lockstep runs simulated together.

    All arrays are ``[n_batch, n_ranks, n_steps]`` wall-clock seconds.
    Indexing (``result[b]``) yields the b-th run as an ordinary
    :class:`LockstepResult` (the slices share memory with the batch).
    Each slice is bit-identical to what :func:`simulate_lockstep` would
    produce for the same execution-time matrix: the recurrence is
    elementwise along the batch axis.
    """

    exec_start: np.ndarray
    exec_end: np.ndarray
    post_end: np.ndarray
    completion: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def n_batch(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[1]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[2]

    def __len__(self) -> int:
        return self.n_batch

    def __getitem__(self, b: int) -> LockstepResult:
        if not -self.n_batch <= b < self.n_batch:
            raise IndexError(f"batch index {b} out of range [0, {self.n_batch})")
        return LockstepResult(
            exec_start=self.exec_start[b],
            exec_end=self.exec_end[b],
            post_end=self.post_end[b],
            completion=self.completion[b],
            meta=dict(self.meta),
        )

    def results(self):
        """Iterate over the B runs as :class:`LockstepResult` views."""
        return (self[b] for b in range(self.n_batch))

    def idle_matrix(self) -> np.ndarray:
        """Per-run seconds spent inside each step's Waitall."""
        return self.completion - self.post_end

    def total_runtimes(self) -> np.ndarray:
        """Per-run wall-clock completion, shape ``[n_batch]``."""
        return self.completion[:, :, -1].max(axis=1)


def _shift(arr: np.ndarray, offset: int, periodic: bool) -> np.ndarray:
    """``out[..., i] = arr[..., i + offset]``; out-of-range entries are -inf.

    Operates along the last (rank) axis so batched ``(B, n_ranks)`` state
    shifts exactly like unbatched ``(n_ranks,)`` state.
    """
    if periodic:
        return np.roll(arr, -offset, axis=-1)
    out = np.full_like(arr, -np.inf)
    n = arr.shape[-1]
    if offset >= 0:
        if offset < n:
            out[..., : n - offset] = arr[..., offset:]
    else:
        if -offset < n:
            out[..., -offset:] = arr[..., : n + offset]
    return out


def _send_positions(pattern: CommPattern, n_ranks: int) -> dict[int, np.ndarray]:
    """Per-offset 1-based send position for every rank (NaN where absent).

    Sends are posted in the order :meth:`CommPattern.send_targets` returns
    them; at open-chain boundaries missing partners shift later positions
    forward, which this mirrors exactly.
    """
    offsets: list[int] = []
    for k in range(1, pattern.distance + 1):
        if pattern.direction == Direction.BIDIRECTIONAL:
            offsets.extend((+k, -k))
        else:
            offsets.append(+k)
    pos: dict[int, np.ndarray] = {o: np.full(n_ranks, np.nan) for o in offsets}
    for rank in range(n_ranks):
        p = 0
        seen: set[int] = set()
        for off in offsets:
            tgt = rank + off
            if pattern.periodic:
                tgt %= n_ranks
            elif not 0 <= tgt < n_ranks:
                continue
            if tgt == rank or tgt in seen:
                continue  # aliased partner on a small periodic ring
            seen.add(tgt)
            p += 1
            pos[off][rank] = p
    return pos


def _offset_domains(
    mapping: ProcessMapping, offset: int, periodic: bool
) -> np.ndarray:
    """``CommDomain`` of the (rank, rank+offset) pair for every rank.

    Ranks whose partner falls off an open chain (or aliases to the rank
    itself) get ``SELF`` — a zero-cost placeholder; those entries are
    masked out of the recurrence anyway.
    """
    n = mapping.n_ranks
    doms = np.full(n, int(CommDomain.SELF), dtype=np.int64)
    for rank in range(n):
        partner = rank + offset
        if periodic:
            partner %= n
        elif not 0 <= partner < n:
            continue
        if partner == rank:
            continue
        doms[rank] = int(mapping.domain(rank, partner))
    return doms


def _link_params(
    network: NetworkModel,
    msg_size: int,
    domain: CommDomain,
    mapping: "ProcessMapping | None",
    offsets: "list[int]",
    periodic: bool,
) -> dict:
    """Per-offset message parameters ``offset -> (flight, o_send, o_recv)``.

    Uniform runs (no mapping) get scalars — bit-identical to the original
    flat-network engine.  Hierarchical runs get ``[n_ranks]`` arrays
    resolved through ``mapping.domain``; communication domains are
    symmetric, so the same array serves rank ``i`` as sender towards
    ``i+offset`` and as receiver from ``i+offset``.
    """
    if mapping is None:
        flight = network.transfer_time(msg_size, domain)
        o_send = network.send_overhead(domain)
        o_recv = network.recv_overhead(domain)
        return {off: (flight, o_send, o_recv) for off in offsets}
    flight_lut = np.array(
        [network.transfer_time(msg_size, d) for d in CommDomain]
    )
    o_send_lut = np.array([network.send_overhead(d) for d in CommDomain])
    o_recv_lut = np.array([network.recv_overhead(d) for d in CommDomain])
    params = {}
    for off in offsets:
        doms = _offset_domains(mapping, off, periodic)
        params[off] = (flight_lut[doms], o_send_lut[doms], o_recv_lut[doms])
    return params


def _simulate_core(
    cfg: LockstepConfig,
    exec_times: np.ndarray,
    network: NetworkModel,
    domain: CommDomain,
    proto: Protocol,
    mapping: "ProcessMapping | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Run the lockstep recurrence for ``exec_times`` of shape (..., P, S).

    Returns ``(exec_start, exec_end, post_end, completion)`` with the same
    shape as ``exec_times``.  All per-step state has shape ``(..., P)``;
    every operation is elementwise along leading (batch) axes, which makes
    batched slices bit-identical to unbatched runs.
    """
    if telemetry.enabled():
        batch = int(np.prod(exec_times.shape[:-2], dtype=np.int64))
        with telemetry.span("engine.lockstep.simulate", batch=batch,
                            n_ranks=cfg.n_ranks, n_steps=cfg.n_steps):
            return _simulate_core_inner(cfg, exec_times, network, domain,
                                        proto, mapping)
    return _simulate_core_inner(cfg, exec_times, network, domain,
                                proto, mapping)


def _simulate_core_inner(
    cfg: LockstepConfig,
    exec_times: np.ndarray,
    network: NetworkModel,
    domain: CommDomain,
    proto: Protocol,
    mapping: "ProcessMapping | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    n = cfg.n_ranks
    pattern = cfg.pattern

    spos = _send_positions(pattern, n)
    recv_offsets = [-o for o in spos]
    link = _link_params(
        network, cfg.msg_size, domain, mapping,
        sorted(set(spos) | set(recv_offsets)), pattern.periodic,
    )

    # Cumulative send-overhead through each rank's p-th send, per offset,
    # plus the total posting overhead (exec end -> Waitall entry).
    send_cum: dict[int, np.ndarray] = {}
    if mapping is None:
        o_send = link[next(iter(spos))][1] if spos else 0.0
        n_sends = np.zeros(n)
        for off, pos in spos.items():
            n_sends += np.isfinite(pos)
            send_cum[off] = pos * o_send
        total_send_ov = n_sends * o_send
    else:
        running = np.zeros(n)
        for off, pos in spos.items():  # insertion order == posting order
            has = np.isfinite(pos)
            running = running + np.where(has, link[off][1], 0.0)
            send_cum[off] = np.where(has, running, np.nan)
        total_send_ov = running

    lead = exec_times.shape[:-2]
    exec_start = np.zeros_like(exec_times)
    exec_end = np.zeros_like(exec_times)
    post_end = np.zeros_like(exec_times)
    completion = np.zeros_like(exec_times)

    c_prev = np.zeros((*lead, n))
    for k in range(cfg.n_steps):
        e_end = c_prev + exec_times[..., k]
        p_end = e_end + total_send_ov
        cand = p_end.copy()

        for o in recv_offsets:
            sender_off = -o  # the sender's send offset towards us
            sender_cum = _shift(send_cum[sender_off], o, pattern.periodic)
            sender_e_end = _shift(e_end, o, pattern.periodic)
            flight, _, o_recv = link[o]  # message (i+o -> i), indexed at i
            with np.errstate(invalid="ignore"):
                send_end = sender_e_end + sender_cum
                if proto == Protocol.EAGER:
                    c_in = np.maximum(send_end + flight, e_end) + o_recv
                else:
                    c_in = np.maximum(send_end, e_end) + flight + o_recv
            # NaN positions (no such partner) must not contribute.
            c_in = np.where(np.isnan(c_in) | np.isinf(sender_e_end), -np.inf, c_in)
            cand = np.maximum(cand, c_in)

        if proto == Protocol.RENDEZVOUS:
            # Outgoing transfers also block the sender's Waitall.
            for o in spos:
                flight, _, o_recv = link[o]  # message (i -> i+o), indexed at i
                recv_e_end = _shift(e_end, o, pattern.periodic)
                with np.errstate(invalid="ignore"):
                    c_out = (
                        np.maximum(e_end + send_cum[o], recv_e_end)
                        + flight + o_recv
                    )
                c_out = np.where(np.isnan(c_out) | np.isinf(recv_e_end), -np.inf, c_out)
                cand = np.maximum(cand, c_out)

            if pattern.direction == Direction.BIDIRECTIONAL:
                # Progress coupling (σ = 2 of Eq. 2): each pair's transfers
                # also wait for the posting-complete times of both endpoints'
                # rendezvous partners — mirrors the DAG engine's coupling
                # edges.  relief[i] = max over i's partners p of post_end[p].
                relief = np.full((*lead, n), -np.inf)
                for o in spos:
                    partner_post = _shift(p_end, o, pattern.periodic)
                    relief = np.maximum(relief, partner_post)
                for o in spos:
                    flight, _, o_recv = link[o]
                    partner_exists = np.isfinite(_shift(e_end, o, pattern.periodic))
                    partner_relief = _shift(relief, o, pattern.periodic)
                    pair_relief = (
                        np.maximum(relief, partner_relief) + flight + o_recv
                    )
                    cand = np.maximum(
                        cand, np.where(partner_exists, pair_relief, -np.inf)
                    )

        exec_start[..., k] = c_prev
        exec_end[..., k] = e_end
        post_end[..., k] = p_end
        completion[..., k] = cand
        c_prev = cand

    return exec_start, exec_end, post_end, completion


def _result_meta(
    cfg: LockstepConfig,
    proto: Protocol,
    network: NetworkModel,
    domain: CommDomain,
    mapping: "ProcessMapping | None",
) -> dict:
    meta = {
        "t_exec": cfg.t_exec,
        "msg_size": cfg.msg_size,
        "pattern": cfg.pattern,
        "protocol": proto.value,
        "noise_mean": cfg.noise.mean(),
        "delays": cfg.delays,
        "seed": cfg.seed,
    }
    if mapping is None:
        meta["flight"] = network.transfer_time(cfg.msg_size, domain)
        meta["o_send"] = network.send_overhead(domain)
        meta["o_recv"] = network.recv_overhead(domain)
    else:
        meta["hierarchical"] = True
        meta["ppn"] = mapping.ppn
    return meta


def _resolve(
    cfg: LockstepConfig,
    network: "NetworkModel | None",
    eager_limit: "int | None",
    protocol: Protocol,
    mapping: "ProcessMapping | None",
) -> "tuple[NetworkModel, Protocol]":
    if network is None:
        network = UniformNetwork()
    if mapping is not None and mapping.n_ranks != cfg.n_ranks:
        raise ValueError(
            f"mapping places {mapping.n_ranks} ranks, config has {cfg.n_ranks}"
        )
    from repro.sim.mpi import DEFAULT_EAGER_LIMIT

    limit = DEFAULT_EAGER_LIMIT if eager_limit is None else eager_limit
    return network, select_protocol(cfg.msg_size, limit, protocol)


def simulate_lockstep(
    cfg: LockstepConfig,
    exec_times: np.ndarray | None = None,
    network: NetworkModel | None = None,
    domain: CommDomain = CommDomain.INTER_NODE,
    protocol: Protocol = Protocol.AUTO,
    eager_limit: int | None = None,
    rng: np.random.Generator | None = None,
    mapping: ProcessMapping | None = None,
) -> LockstepResult:
    """Simulate a lockstep program, vectorized over ranks.

    Parameters
    ----------
    cfg:
        The experiment parameters (ranks, steps, pattern, noise, delays).
    exec_times:
        Optional pre-built ``[n_ranks, n_steps]`` execution durations; built
        from ``cfg`` (with its seed) when omitted.
    network:
        Transfer-time model.  Defaults to
        :class:`~repro.sim.network.UniformNetwork`.
    domain:
        The single communication domain of every message when no
        ``mapping`` is given (the flat-network contract).  Ignored when
        ``mapping`` is set.
    protocol, eager_limit:
        Protocol forcing / switch point, as in the DAG engine.
    mapping:
        Optional hierarchical rank placement.  When given, each message's
        flight time and overheads are resolved per rank pair through
        ``mapping.domain`` against the (per-domain) ``network`` — the
        same classification the DAG engine applies.
    """
    network, proto = _resolve(cfg, network, eager_limit, protocol, mapping)
    if exec_times is None:
        exec_times = build_exec_times(cfg, rng)
    exec_times = np.asarray(exec_times, dtype=float)
    if exec_times.shape != (cfg.n_ranks, cfg.n_steps):
        raise ValueError(
            f"exec_times shape {exec_times.shape} != ({cfg.n_ranks}, {cfg.n_steps})"
        )

    exec_start, exec_end, post_end, completion = _simulate_core(
        cfg, exec_times, network, domain, proto, mapping
    )
    return LockstepResult(
        exec_start=exec_start,
        exec_end=exec_end,
        post_end=post_end,
        completion=completion,
        meta=_result_meta(cfg, proto, network, domain, mapping),
    )


def simulate_lockstep_batch(
    cfg: LockstepConfig,
    exec_times: np.ndarray,
    network: NetworkModel | None = None,
    domain: CommDomain = CommDomain.INTER_NODE,
    protocol: Protocol = Protocol.AUTO,
    eager_limit: int | None = None,
    mapping: ProcessMapping | None = None,
) -> BatchedLockstepResult:
    """Simulate B independent lockstep runs as one batched recurrence.

    Parameters
    ----------
    cfg:
        Shared experiment parameters (ranks, steps, pattern, message size).
        ``cfg.delays``/``cfg.noise``/``cfg.seed`` are *not* consulted — all
        per-run variation must already be baked into ``exec_times``.
    exec_times:
        ``[n_batch, n_ranks, n_steps]`` execution durations, one matrix per
        run (e.g. one per delay-campaign draw, each built from its own
        derived seed).
    network, domain, protocol, eager_limit, mapping:
        As in :func:`simulate_lockstep`; shared by all runs in the batch.

    Returns
    -------
    BatchedLockstepResult
        ``[n_batch, n_ranks, n_steps]`` timing matrices whose slices are
        bit-identical to the corresponding unbatched runs.
    """
    network, proto = _resolve(cfg, network, eager_limit, protocol, mapping)
    exec_times = np.asarray(exec_times, dtype=float)
    if exec_times.ndim != 3 or exec_times.shape[1:] != (cfg.n_ranks, cfg.n_steps):
        raise ValueError(
            f"exec_times shape {exec_times.shape} != "
            f"(n_batch, {cfg.n_ranks}, {cfg.n_steps})"
        )
    if exec_times.shape[0] < 1:
        raise ValueError("batch must contain at least one run")

    exec_start, exec_end, post_end, completion = _simulate_core(
        cfg, exec_times, network, domain, proto, mapping
    )
    meta = _result_meta(cfg, proto, network, domain, mapping)
    meta["n_batch"] = int(exec_times.shape[0])
    return BatchedLockstepResult(
        exec_start=exec_start,
        exec_end=exec_end,
        post_end=post_end,
        completion=completion,
        meta=meta,
    )
