"""Hybrid MPI/OpenMP proxy (paper outlook, Sec. VII).

The paper's conclusion proposes comparing "pure MPI and hybrid MPI/OpenMP
code since the latter tends to enforce frequent thread synchronization,
lessening the potential for inter-process skew".  This module models that
contrast on the lockstep simulator:

- **pure MPI**: every core is a rank; each rank draws its own noise.
- **hybrid**: cores are grouped into multi-threaded processes.  One MPI
  rank per group communicates; the group's execution phase ends only when
  *all* its threads have finished (an implicit OpenMP barrier at the end
  of every parallel region), so the group's effective per-phase noise is
  the **maximum** over its threads — larger per phase, but there are fewer
  independently-skewing endpoints.

:func:`hybrid_exec_times` produces the per-rank execution matrix for the
hybrid case; the communication side is just a lockstep program over the
(fewer) process ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.delay import DelaySpec
from repro.sim.noise import NoiseModel, NoNoise
from repro.sim.program import CommPattern, LockstepConfig

__all__ = ["HybridConfig", "hybrid_exec_times", "hybrid_lockstep_config"]


@dataclass(frozen=True)
class HybridConfig:
    """A hybrid MPI/OpenMP run: ``n_processes`` ranks × ``threads`` each.

    Parameters
    ----------
    n_processes:
        MPI ranks (one per thread group).
    threads:
        OpenMP threads per rank; 1 reduces to pure MPI.
    n_steps / t_exec / msg_size / pattern / noise / delays / seed:
        As in :class:`~repro.sim.program.LockstepConfig`; noise is drawn
        *per thread* and reduced with a max over each group (the implicit
        barrier at the end of a parallel region).
    """

    n_processes: int
    threads: int
    n_steps: int
    t_exec: float = 3e-3
    msg_size: int = 8192
    pattern: CommPattern = field(default_factory=CommPattern)
    noise: NoiseModel = field(default_factory=NoNoise)
    delays: tuple[DelaySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_processes < 2:
            raise ValueError(f"n_processes must be >= 2, got {self.n_processes}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {self.t_exec}")
        for spec in self.delays:
            if spec.rank >= self.n_processes or spec.step >= self.n_steps:
                raise ValueError(f"delay {spec} outside the configured run")

    @property
    def total_cores(self) -> int:
        return self.n_processes * self.threads


def hybrid_exec_times(cfg: HybridConfig, rng: np.random.Generator | None = None) -> np.ndarray:
    """Per-process execution times with the thread-barrier max reduction.

    Each of the ``threads`` threads of a process draws its own per-phase
    noise; the process's phase ends at the *slowest* thread (implicit
    barrier).  Injected delays hit one thread of the target process, which
    under the max reduction extends the whole process's phase — exactly how
    a serial disturbance inside a parallel region behaves.
    """
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    per_thread = cfg.noise.sample(rng, (cfg.n_processes, cfg.threads, cfg.n_steps))
    group_noise = per_thread.max(axis=1)
    times = np.full((cfg.n_processes, cfg.n_steps), cfg.t_exec) + group_noise
    for spec in cfg.delays:
        times[spec.rank, spec.step] += spec.duration
    return times


def hybrid_lockstep_config(cfg: HybridConfig) -> LockstepConfig:
    """The communication-side lockstep config over the process ranks."""
    return LockstepConfig(
        n_ranks=cfg.n_processes,
        n_steps=cfg.n_steps,
        t_exec=cfg.t_exec,
        msg_size=cfg.msg_size,
        pattern=cfg.pattern,
        delays=cfg.delays,
        seed=cfg.seed,
    )
