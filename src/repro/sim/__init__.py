"""Discrete-event simulation substrate for message-passing programs.

This package provides everything needed to *simulate* the behaviour of an
MPI-parallel bulk-synchronous program on a cluster, which is the substrate
the paper's experiments run on:

- :mod:`repro.sim.topology` — hierarchical machine topology (cores, sockets,
  nodes) and the mapping of MPI ranks onto it.
- :mod:`repro.sim.network` — transfer-time models (Hockney, LogGP) with
  per-domain (intra-socket / inter-socket / inter-node) parameters.
- :mod:`repro.sim.noise` — fine-grained noise generators (exponential per
  Eq. 3 of the paper, bimodal, gamma, ...).
- :mod:`repro.sim.delay` — one-off injected delays (the "strong delays" whose
  propagation the paper studies).
- :mod:`repro.sim.program` — construction of bulk-synchronous per-rank
  operation sequences (compute / Isend / Irecv / Waitall).
- :mod:`repro.sim.mpi` — message-matching and protocol (eager/rendezvous)
  semantics.
- :mod:`repro.sim.engine` — the authoritative static-DAG discrete-event
  engine.
- :mod:`repro.sim.lockstep` — the batched, hierarchy-aware vectorized
  fast path for the standard lockstep pattern, validated against the DAG
  engine (golden traces + property tests).
- :mod:`repro.sim.saturation` — processor-sharing simulation of shared
  memory-bandwidth contention for data-bound workloads.
- :mod:`repro.sim.trace` — trace records and timing matrices consumed by the
  analysis layer in :mod:`repro.core`.
"""

from repro.sim.collectives import (
    Collective,
    CollectiveConfig,
    build_collective_program,
)
from repro.sim.delay import DelaySpec, delays_at_local_rank, random_delays
from repro.sim.engine import (
    BatchedDagResult,
    DagResult,
    EngineError,
    SimConfig,
    StaticDag,
    build_dag,
    clear_dag_cache,
    dag_cache_info,
    simulate,
    simulate_dag,
    simulate_dag_batch,
)
from repro.sim.hybrid import HybridConfig, hybrid_exec_times, hybrid_lockstep_config
from repro.sim.lockstep import (
    BatchedLockstepResult,
    LockstepResult,
    simulate_lockstep,
    simulate_lockstep_batch,
)
from repro.sim.mpi import Protocol, select_protocol
from repro.sim.network import HockneyModel, LogGPModel, NetworkModel, UniformNetwork
from repro.sim.noise import (
    BimodalNoise,
    ExponentialNoise,
    GammaNoise,
    NoiseModel,
    NoNoise,
    TraceNoise,
    UniformNoise,
)
from repro.sim.program import (
    CommPattern,
    Direction,
    LockstepConfig,
    Op,
    OpKind,
    Program,
    build_exec_times,
    build_lockstep_program,
)
from repro.sim.saturation import SaturationConfig, simulate_saturation
from repro.sim.topology import CommDomain, MachineTopology, ProcessMapping
from repro.sim.trace import OpRecord, Trace
from repro.sim.traceio import read_jsonl, write_csv, write_jsonl

__all__ = [
    "BatchedDagResult",
    "BatchedLockstepResult",
    "BimodalNoise",
    "Collective",
    "CollectiveConfig",
    "CommDomain",
    "CommPattern",
    "DagResult",
    "DelaySpec",
    "Direction",
    "EngineError",
    "ExponentialNoise",
    "GammaNoise",
    "HockneyModel",
    "HybridConfig",
    "LockstepConfig",
    "LockstepResult",
    "LogGPModel",
    "MachineTopology",
    "NetworkModel",
    "NoNoise",
    "NoiseModel",
    "Op",
    "OpKind",
    "OpRecord",
    "ProcessMapping",
    "Program",
    "Protocol",
    "SaturationConfig",
    "SimConfig",
    "StaticDag",
    "Trace",
    "TraceNoise",
    "UniformNetwork",
    "UniformNoise",
    "build_collective_program",
    "build_dag",
    "build_exec_times",
    "build_lockstep_program",
    "clear_dag_cache",
    "dag_cache_info",
    "delays_at_local_rank",
    "hybrid_exec_times",
    "hybrid_lockstep_config",
    "random_delays",
    "read_jsonl",
    "select_protocol",
    "simulate",
    "simulate_dag",
    "simulate_dag_batch",
    "simulate_lockstep",
    "simulate_lockstep_batch",
    "simulate_saturation",
    "write_csv",
    "write_jsonl",
]
