"""The run ledger: one provenance record per run, under ``<cache>/runs/``.

A ledger record is the durable answer to *"what ran here?"* — spec key,
seed root, engine, worker count, task/cache economics, wall time,
failure summaries, and where the telemetry JSONL and report artifacts
landed.  One atomically written single-line JSON file per run keeps the
ledger append-only under concurrent campaigns (two runs never contend
on one file) while ``cat runs/*.json`` still yields valid JSONL.

:class:`RunTracker` is the bus subscriber that accumulates a record's
fields from lifecycle events; :class:`RunLedger` reads and writes the
directory.  The CLI surface is :mod:`repro.obs.cli` (``runs ls|show|
tail``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Iterator

from repro.obs.events import EVENT_VERSION

__all__ = ["RUN_RECORD_VERSION", "RunLedger", "RunTracker", "new_run_id",
           "render_run_summary"]

#: Schema version of ledger records; bump together with field changes.
#: v2 added the worker-health fields: ``n_stalls``, ``n_heartbeats``,
#: ``worker_rss_peak_bytes``.  v3 added the fault-tolerance economics —
#: ``n_retried``, ``n_quarantined``, ``n_pool_respawns``,
#: ``retry_wasted_s`` — and the resume link ``resumed_from``.
RUN_RECORD_VERSION = 3

#: Failure summaries kept per record — enough to diagnose, bounded so a
#: 10k-task wreck cannot bloat the ledger.
_MAX_FAILURES = 8


def new_run_id(kind: str, started_unix: float) -> str:
    """Sortable, collision-free run id: ``sweep-20260808T120000-3fa9c1``."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(started_unix))
    return f"{kind.rsplit('.', 1)[-1]}-{stamp}-{uuid.uuid4().hex[:6]}"


class RunTracker:
    """Accumulates one ledger record from the event stream.

    Subscribe :meth:`handle` to the bus; the first ``run.start`` defines
    the run's identity (kind, name, totals, spec key) and later ones are
    ignored — nested or worker-side lifecycles never overwrite the
    outer run.  Callers attach out-of-band provenance directly:
    :meth:`add_artifact` for written artifact paths,
    :meth:`set_telemetry` for the profiled JSONL path, and
    :meth:`note_failure` for run-level exceptions.
    """

    def __init__(self) -> None:
        self.kind: "str | None" = None
        self.name: "str | None" = None
        self.n_tasks: "int | None" = None
        self.spec_key: "str | None" = None
        self.seed_root: "int | None" = None
        self.engine: "str | None" = None
        self.jobs: "int | None" = None
        self.n_done = 0
        self.n_cached = 0
        self.n_failed = 0
        self.n_stalls = 0
        self.n_retried = 0
        self.n_quarantined = 0
        self.n_pool_respawns = 0
        self.retry_wasted_s = 0.0
        self.resumed_from: "str | None" = None
        self.n_heartbeats = 0
        self.worker_rss_peak_bytes = 0
        self.n_events = 0
        self.failures: "list[str]" = []
        self.failed_tasks: "list[int]" = []
        self.run_started = False
        self.run_finished = False
        self.finish_status: "str | None" = None
        self.telemetry: "str | None" = None
        self.artifacts: "list[str]" = []

    # -- bus subscriber -----------------------------------------------

    def handle(self, event: tuple) -> None:
        _, name, _, _, data = event
        data = data or {}
        self.n_events += 1
        if name == "run.start":
            if self.run_started:
                return
            self.run_started = True
            self.kind = data.get("kind", self.kind)
            self.name = data.get("name", self.name)
            if data.get("n_tasks") is not None:
                self.n_tasks = int(data["n_tasks"])
            self.spec_key = data.get("spec_key", self.spec_key)
            self.seed_root = data.get("seed_root", self.seed_root)
            self.engine = data.get("engine", self.engine)
            self.jobs = data.get("jobs", self.jobs)
        elif name in ("task.done", "task.failed", "task.cache_hit"):
            self.n_done += 1
            if name == "task.cache_hit":
                self.n_cached += 1
            elif name == "task.failed":
                self.n_failed += 1
                if data.get("index") is not None:
                    self.failed_tasks.append(int(data["index"]))
        elif name == "task.stall":
            self.n_stalls += 1
        elif name == "task.retry":
            self.n_retried += 1
        elif name == "task.quarantined":
            self.n_quarantined += 1
        elif name == "pool.respawn":
            self.n_pool_respawns += 1
        elif name == "worker.heartbeat":
            self.n_heartbeats += 1
            rss = data.get("rss_bytes")
            if rss is not None:
                self.worker_rss_peak_bytes = max(
                    self.worker_rss_peak_bytes, int(rss))
        elif name == "run.finish":
            self.run_finished = True
            self.finish_status = data.get("status", self.finish_status)

    # -- out-of-band provenance ---------------------------------------

    def note_failure(self, summary: str) -> None:
        if len(self.failures) < _MAX_FAILURES:
            self.failures.append(str(summary))

    def add_artifact(self, path) -> None:
        self.artifacts.append(str(path))

    def set_telemetry(self, path) -> None:
        self.telemetry = str(path)

    def set_resumed_from(self, run_id: "str | None") -> None:
        """Link this run to the ledger record it resumes."""
        self.resumed_from = str(run_id) if run_id is not None else None

    def set_retry_wasted(self, seconds: float) -> None:
        """Record the wall clock burned by retried attempts (a duration,
        so it travels out of band — never in an event payload)."""
        self.retry_wasted_s = float(seconds)

    # -- record -------------------------------------------------------

    def record(self, run_id: str, status: str, kind: str, name: str,
               wall_s: float, started_unix: float,
               finished_unix: float) -> dict:
        """Build the ledger record dict (see :data:`RUN_RECORD_VERSION`)."""
        n_tasks = self.n_tasks if self.n_tasks is not None else self.n_done
        n_executed = self.n_done - self.n_cached - self.n_failed
        hit_rate = (self.n_cached / n_tasks) if n_tasks else None
        return {
            "version": RUN_RECORD_VERSION,
            "event_version": EVENT_VERSION,
            "id": run_id,
            "kind": self.kind or kind,
            "name": self.name or name,
            "status": status,
            "spec_key": self.spec_key,
            "seed_root": self.seed_root,
            "engine": self.engine,
            "jobs": self.jobs,
            "n_tasks": n_tasks,
            "n_cached": self.n_cached,
            "n_executed": n_executed,
            "n_failed": self.n_failed,
            "cache_hit_rate": hit_rate,
            "wall_s": wall_s,
            "started_unix": started_unix,
            "finished_unix": finished_unix,
            "failures": list(self.failures),
            "failed_tasks": sorted(self.failed_tasks)[:_MAX_FAILURES],
            "n_stalls": self.n_stalls,
            "n_retried": self.n_retried,
            "n_quarantined": self.n_quarantined,
            "n_pool_respawns": self.n_pool_respawns,
            "retry_wasted_s": self.retry_wasted_s,
            "resumed_from": self.resumed_from,
            "n_heartbeats": self.n_heartbeats,
            "worker_rss_peak_bytes": self.worker_rss_peak_bytes,
            "telemetry": self.telemetry,
            "artifacts": list(self.artifacts),
            "n_events": self.n_events,
        }


def render_run_summary(record: dict) -> str:
    """The one-line exit summary, sourced from the *ledger record* itself.

    Printing and persisting read the same dict, so the terminal line and
    the ledger can never disagree about what a run did.
    """
    status = record["status"]
    mark = "" if status == "ok" else f" {status.upper()}"
    extras = ""
    if record.get("n_stalls"):
        extras += f", {record['n_stalls']} stall(s)"
    if record.get("n_retried"):
        extras += f", {record['n_retried']} retried"
    if record.get("n_quarantined"):
        extras += f", {record['n_quarantined']} quarantined"
    if record.get("n_pool_respawns"):
        extras += f", {record['n_pool_respawns']} pool respawn(s)"
    if record.get("resumed_from"):
        extras += f", resumed from {record['resumed_from']}"
    return (f"[run {record['id']}{mark}: {record['n_tasks']} task(s), "
            f"{record['n_failed']} failed, {record['n_cached']} cache "
            f"hit(s){extras}, {record['wall_s']:.2f}s]")


class RunLedger:
    """The ``<cache-dir>/runs/`` directory of per-run JSON records."""

    def __init__(self, cache_dir: "str | Path") -> None:
        self.root = Path(cache_dir).expanduser() / "runs"

    def path_for(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    def append(self, record: dict) -> Path:
        """Atomically persist one record; returns its path."""
        path = self.path_for(record["id"])
        self.root.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def records(self) -> "Iterator[dict]":
        """Every readable record, oldest first (torn files are skipped)."""
        if not self.root.exists():
            return
        loaded = []
        for path in sorted(self.root.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict) and "id" in record:
                loaded.append(record)
        loaded.sort(key=lambda r: (r.get("started_unix") or 0, r["id"]))
        yield from loaded

    def find(self, id_or_prefix: str) -> dict:
        """The unique record matching a full id or unambiguous prefix.

        Raises :class:`KeyError` with a readable message when nothing
        (or more than one record) matches.
        """
        # One directory scan: records() re-reads and re-parses every
        # file, so materialize it once and run both match passes (exact,
        # then prefix) over the loaded list.
        records = list(self.records())
        matches = [r for r in records if r["id"] == id_or_prefix]
        if not matches:
            matches = [r for r in records
                       if r["id"].startswith(id_or_prefix)]
        if not matches:
            raise KeyError(f"no run {id_or_prefix!r} in {self.root}")
        if len(matches) > 1:
            ids = ", ".join(r["id"] for r in matches[:5])
            raise KeyError(
                f"run id prefix {id_or_prefix!r} is ambiguous ({ids})")
        return matches[0]

    def tail(self, n: int = 10) -> "list[dict]":
        """The most recent ``n`` records, oldest of them first."""
        return list(self.records())[-n:]
