"""One observed run: bus lifecycle, progress wiring, ledger write.

:func:`observe_run` is the CLI-facing composition root of the obs layer.
It enables the event bus for the duration of one run, attaches the
:class:`~repro.obs.ledger.RunTracker` (always) and the
:class:`~repro.obs.progress.ProgressRenderer` (when requested, or
automatically on a TTY), and on exit — success *or* failure — builds
the ledger record, persists it under ``<cache-dir>/runs/``, and prints
the exit summary line.  The summary is rendered from the persisted
record dict, so terminal output and ledger provenance cannot diverge.

Library code never calls this: runners only *emit*; sessions are owned
by whoever owns the terminal (the CLI handlers, or a future daemon).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager

from repro.obs import events
from repro.obs.ledger import RunLedger, RunTracker, new_run_id, \
    render_run_summary
from repro.obs.progress import ProgressRenderer

__all__ = ["observe_run"]


@contextmanager
def observe_run(kind: str, name: str, cache_dir=None,
                progress: "bool | None" = None, stream=None, echo=print):
    """Observe one run end to end; yields its :class:`RunTracker`.

    Parameters
    ----------
    kind:
        Run kind (``scenario.sweep``, ``scenario.run``, ``report.run``) —
        the default if no ``run.start`` event supplies one.
    name:
        Scenario/report name fallback, same rule.
    cache_dir:
        Where the ledger lives; ``None`` skips persistence (the summary
        line still prints).
    progress:
        ``True``/``False`` force the live renderer on/off; ``None``
        (the default) auto-enables it when ``stream`` is a TTY.
    stream:
        Renderer output stream (default ``sys.stderr``).
    echo:
        Summary sink (default :func:`print`); ``None`` silences it.
    """
    stream = stream if stream is not None else sys.stderr
    if progress is None:
        progress = bool(getattr(stream, "isatty", lambda: False)())

    bus = events.enable()
    tracker = RunTracker()
    bus.subscribe(tracker.handle)
    renderer = None
    if progress:
        renderer = ProgressRenderer(stream=stream)
        bus.subscribe(renderer.handle)

    started_unix = time.time()
    t0 = time.perf_counter()
    status = "ok"
    try:
        yield tracker
    except BaseException as exc:
        # ^C (and a polite SystemExit) is an interruption, not a crash:
        # the record persists either way — the `finally` below runs on
        # the way down — but "interrupted" tells `runs ls` (and
        # `--resume`) that the missing tasks were never attempted.
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            status = "interrupted"
        else:
            status = "failed"
        if isinstance(exc, Exception):
            tracker.note_failure(f"{type(exc).__name__}: {exc}")
        raise
    finally:
        # A runner that crashed before its own run.finish still closes
        # the lifecycle, so subscribers always see a complete stream.
        if not tracker.run_finished:
            events.emit("run.finish", status=status)
        if renderer is not None:
            if status == "ok":
                renderer.finish()
            else:
                # Failure path: the traceback (or ^C unwind) is about to
                # print — erase the half-painted line instead of leaving
                # it for the diagnostics to concatenate onto.
                renderer.clear()
        events.disable()

        wall_s = time.perf_counter() - t0
        finished_unix = time.time()
        record = tracker.record(
            run_id=new_run_id(tracker.kind or kind, started_unix),
            status=status, kind=kind, name=name, wall_s=wall_s,
            started_unix=started_unix, finished_unix=finished_unix,
        )
        path = None
        if cache_dir is not None:
            try:
                path = RunLedger(cache_dir).append(record)
            except OSError:
                # An unwritable cache dir must not mask the run's own
                # outcome (the store already failed fast with a typed
                # error on this path); the summary line still prints.
                path = None
        if echo is not None:
            echo(render_run_summary(record))
            if path is not None:
                echo(f"[run recorded in {path}]")
