"""``repro-experiment runs`` subcommands: query the run ledger.

::

    repro-experiment runs ls --cache-dir DIR [--json] [--name N] [--status S]
    repro-experiment runs show RUN_ID --cache-dir DIR [--json] [--telemetry]
    repro-experiment runs tail --cache-dir DIR [-n N] [--json]

``ls`` lists every recorded run (filterable by scenario/report name and
status); ``show`` reconstructs one run's full provenance — spec key,
seed root, engine, cache economics, worker health (stalls, heartbeats,
peak RSS), failure summaries, telemetry file, artifact paths — from its
ledger record (unambiguous id prefixes work), and with ``--telemetry``
renders the linked telemetry summary inline; ``tail`` shows the most
recent records.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs.ledger import RunLedger

__all__ = ["runs_main", "build_runs_parser"]


def build_runs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment runs",
        description="Query the run ledger written under <cache-dir>/runs/.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="list recorded runs")
    p_ls.add_argument("--cache-dir", required=True, metavar="DIR",
                      help="cache directory holding the runs/ ledger")
    p_ls.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable output")
    p_ls.add_argument("--name", default=None, metavar="NAME",
                      help="only runs of this scenario/report name")
    p_ls.add_argument("--status", default=None,
                      choices=["ok", "failed", "interrupted"],
                      help="only runs with this status")

    p_show = sub.add_parser("show", help="full provenance of one run")
    p_show.add_argument("run_id", metavar="RUN_ID",
                        help="run id (unambiguous prefixes work)")
    p_show.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="cache directory holding the runs/ ledger")
    p_show.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw ledger record")
    p_show.add_argument("--telemetry", action="store_true",
                        dest="with_telemetry",
                        help="also render the run's linked telemetry "
                             "summary (phase breakdown, hit rates)")

    p_tail = sub.add_parser("tail", help="most recent runs")
    p_tail.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="cache directory holding the runs/ ledger")
    p_tail.add_argument("-n", type=int, default=10, metavar="N",
                        help="how many records (default 10)")
    p_tail.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    return parser


def _fmt_when(unix: "float | None") -> str:
    if unix is None:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(unix)) + "Z"


def _fmt_rate(rate: "float | None") -> str:
    return "-" if rate is None else f"{rate * 100:.0f}%"


def _ls_line(r: dict) -> str:
    return (f"{r['id']:<34} {r['status']:<6} {r.get('kind') or '-':<14} "
            f"{r.get('name') or '-':<28} "
            f"{r.get('n_tasks', 0):>5} task(s) "
            f"cache {_fmt_rate(r.get('cache_hit_rate')):>4}  "
            f"{r.get('wall_s', 0.0):>7.2f}s  "
            f"{_fmt_when(r.get('started_unix'))}")


def _print_records(records: "list[dict]", as_json: bool, root) -> int:
    if as_json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"[no runs recorded in {root}]")
        return 0
    for r in records:
        print(_ls_line(r))
    print(f"[{len(records)} run(s) in {root}]")
    return 0


def _cmd_ls(args) -> int:
    ledger = RunLedger(args.cache_dir)
    records = list(ledger.records())
    if args.name is not None:
        records = [r for r in records if r.get("name") == args.name]
    if args.status is not None:
        records = [r for r in records if r.get("status") == args.status]
    return _print_records(records, args.as_json, ledger.root)


def _cmd_tail(args) -> int:
    ledger = RunLedger(args.cache_dir)
    return _print_records(ledger.tail(args.n), args.as_json, ledger.root)


def _cmd_show(args) -> int:
    ledger = RunLedger(args.cache_dir)
    try:
        r = ledger.find(args.run_id)
    except KeyError as exc:
        print(f"runs error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(r, indent=2, sort_keys=True))
        return 0
    print(f"=== run {r['id']} ===")
    rows = [
        ("status", r.get("status")),
        ("kind", r.get("kind")),
        ("name", r.get("name")),
        ("engine", r.get("engine")),
        ("jobs", r.get("jobs")),
        ("spec key", r.get("spec_key")),
        ("seed root", r.get("seed_root")),
        ("tasks", r.get("n_tasks")),
        ("cached", r.get("n_cached")),
        ("executed", r.get("n_executed")),
        ("failed", r.get("n_failed")),
        ("cache hit rate", _fmt_rate(r.get("cache_hit_rate"))),
        ("wall time", f"{r.get('wall_s', 0.0):.3f}s"),
        ("started", _fmt_when(r.get("started_unix"))),
        ("finished", _fmt_when(r.get("finished_unix"))),
        ("events", r.get("n_events")),
        ("telemetry", r.get("telemetry") or "-"),
    ]
    # v2 worker-health fields: only shown when the record carries them,
    # so v1 records render exactly as before.
    if r.get("version", 1) >= 2:
        rows.extend([
            ("stalls", r.get("n_stalls")),
            ("heartbeats", r.get("n_heartbeats")),
            ("worker rss peak", _fmt_bytes(r.get("worker_rss_peak_bytes"))),
        ])
    # v3 fault-tolerance economics, gated the same way.
    if r.get("version", 1) >= 3:
        rows.extend([
            ("retried", r.get("n_retried")),
            ("quarantined", r.get("n_quarantined")),
            ("pool respawns", r.get("n_pool_respawns")),
            ("retry wasted", f"{r.get('retry_wasted_s', 0.0):.3f}s"),
            ("resumed from", r.get("resumed_from") or "-"),
        ])
    for label, value in rows:
        print(f"  {label:<16} {value if value is not None else '-'}")
    artifacts = r.get("artifacts") or []
    print(f"  {'artifacts':<16} {len(artifacts)}")
    for path in artifacts:
        print(f"    {path}")
    for failure in r.get("failures") or []:
        print(f"  failure: {failure.splitlines()[0]}")
    if args.with_telemetry:
        return _show_telemetry(r)
    return 0


def _fmt_bytes(n: "int | None") -> str:
    if not n:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _show_telemetry(record: dict) -> int:
    """Render the run's linked telemetry inline (``runs show --telemetry``).

    Reuses the stats CLI's loader so a missing/unreadable/empty file
    produces the same one-line ``stats error`` diagnostics users already
    know from ``stats show`` — not a traceback, not a silent skip.
    """
    from repro.telemetry.cli import StatsError, _load
    from repro.telemetry.sinks import render_summary

    path = record.get("telemetry")
    if not path:
        print("stats error: run has no linked telemetry (was it run with "
              "--profile?)", file=sys.stderr)
        return 1
    try:
        snap = _load(path)
    except StatsError as exc:
        print(f"stats error: {exc}", file=sys.stderr)
        return 1
    print()
    print(render_summary(snap))
    return 0


def runs_main(argv: "list[str] | None" = None) -> int:
    args = build_runs_parser().parse_args(argv)
    return {"ls": _cmd_ls, "show": _cmd_show,
            "tail": _cmd_tail}[args.command](args)


if __name__ == "__main__":
    sys.exit(runs_main())
