"""TTY progress rendering: one live line driven by bus events.

:class:`ProgressRenderer` subscribes to the event bus and keeps a single
``\\r``-rewritten line on ``stderr`` up to date with task counts,
throughput, cache-hit rate, and an ETA derived from an exponentially
weighted moving average of completion gaps.  It is a pure *consumer*:
it never touches run state, so attaching or detaching it cannot change
results (the same purity contract telemetry holds).

Rendering is throttled (default 10 Hz) so a 10k-task sweep of
sub-millisecond cache hits does not spend its time writing to the
terminal; the final state is always flushed by :meth:`finish`.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressRenderer", "format_eta"]

#: EWMA smoothing factor for completion gaps: recent completions
#: dominate (batched blocks complete in bursts), old history decays in
#: ~10 completions.
_EWMA_ALPHA = 0.3


def format_eta(seconds: float) -> str:
    """Compact ETA: ``42s``, ``3m10s``, ``1h02m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressRenderer:
    """Single-line live progress over a run's lifecycle events.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr`` — progress must never
        contaminate a piped stdout).
    interval:
        Minimum seconds between repaints; 0 repaints on every event
        (used by tests and the overhead benchmark's worst case).
    """

    def __init__(self, stream=None, interval: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.label = "run"
        self.total: "int | None" = None
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.stalled = 0
        self.retried = 0
        self.quarantined = 0
        self.phase: "str | None" = None
        self._t0 = time.perf_counter()
        self._last_paint = 0.0
        self._last_completion: "float | None" = None
        self._gap_ewma: "float | None" = None
        self._last_len = 0

    # -- event feed ---------------------------------------------------

    def handle(self, event: tuple) -> None:
        """Bus subscriber entry point."""
        _, name, _, _, data = event
        data = data or {}
        if name == "run.start":
            kind = data.get("kind", "run")
            run_name = data.get("name")
            self.label = f"{kind} {run_name}" if run_name else kind
            if data.get("n_tasks") is not None:
                self.total = int(data["n_tasks"])
            self._t0 = time.perf_counter()
        elif name in ("task.done", "task.failed", "task.cache_hit"):
            self.done += 1
            if name == "task.cache_hit":
                self.cached += 1
            elif name == "task.failed":
                self.failed += 1
            else:
                self._note_completion()
        elif name == "task.stall":
            self.stalled += 1
        elif name == "task.retry":
            self.retried += 1
        elif name == "task.quarantined":
            self.quarantined += 1
        elif name == "report.phase":
            self.phase = data.get("phase")
        elif name == "run.finish":
            return  # the session calls finish() after detaching us
        self._maybe_render()

    def _note_completion(self) -> None:
        now = time.perf_counter()
        if self._last_completion is not None:
            gap = now - self._last_completion
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma = (_EWMA_ALPHA * gap
                                  + (1.0 - _EWMA_ALPHA) * self._gap_ewma)
        self._last_completion = now

    # -- painting -----------------------------------------------------

    def _line(self) -> str:
        elapsed = max(time.perf_counter() - self._t0, 1e-9)
        parts = [self.label]
        if self.total:
            pct = 100.0 * self.done / self.total
            parts.append(f"{self.done}/{self.total} ({pct:.0f}%)")
        else:
            parts.append(f"{self.done} done")
        parts.append(f"{self.done / elapsed:.1f} task/s")
        if self.done:
            parts.append(f"cache {100.0 * self.cached / self.done:.0f}%")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.stalled:
            parts.append(f"{self.stalled} stalled!")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined!")
        if self.phase:
            parts.append(f"phase={self.phase}")
        eta = self._eta()
        if eta is not None:
            parts.append(f"eta {format_eta(eta)}")
        return "  ".join(parts)

    def _eta(self) -> "float | None":
        """Remaining seconds from the completion-gap EWMA, if estimable."""
        if not self.total or self.done >= self.total:
            return None
        remaining = self.total - self.done
        if self._gap_ewma is not None:
            return self._gap_ewma * remaining
        if self.done:  # single data point: fall back to mean throughput
            elapsed = time.perf_counter() - self._t0
            return elapsed / self.done * remaining
        return None

    def _maybe_render(self) -> None:
        now = time.perf_counter()
        if now - self._last_paint < self.interval:
            return
        self._last_paint = now
        self._paint(self._line())

    def _paint(self, line: str) -> None:
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write(f"\r{line}{pad}")
        self.stream.flush()
        self._last_len = len(line)

    def clear(self) -> None:
        """Erase the in-progress line without terminating it.

        Called before anything that must not share the line — a
        traceback about to be printed, a ``KeyboardInterrupt`` unwind —
        so diagnostics never concatenate onto half-painted progress.
        Safe to call repeatedly or when nothing was ever painted.
        """
        if self._last_len:
            self.stream.write("\r" + " " * self._last_len + "\r")
            self.stream.flush()
            self._last_len = 0

    def finish(self) -> None:
        """Paint the final state and terminate the line with a newline.

        The last progress line stays in the scrollback (totals, cache
        rate, failures) and — the hygiene contract — the cursor never
        ends mid-line: whatever prints next (exit summary, shell prompt)
        starts on a fresh line.  A renderer that saw no events writes
        nothing.
        """
        if not self._last_len and not self.done and not self.stalled:
            return
        self._paint(self._line())
        self.stream.write("\n")
        self.stream.flush()
        self._last_len = 0
