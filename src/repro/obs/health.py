"""Worker health: resource sampling and the parent-side stall watchdog.

Long campaigns die in two undramatic ways: a worker quietly balloons
its RSS until the OOM killer takes it, or one task wedges and the pool
looks "busy" forever.  Both are invisible to the lifecycle events PR 7
added — those only fire when something *completes*.  This module makes
liveness itself observable:

- :func:`sample_resources` reads the calling process's RSS and CPU time
  from ``/proc`` (falling back to :func:`resource.getrusage` where
  ``/proc`` is unavailable).  Workers sample themselves at the end of
  every execution unit and the sample rides home through the executor's
  pickled result channel, where the parent emits a ``worker.heartbeat``
  event and feeds ``worker.rss_bytes`` / ``worker.cpu_s`` telemetry
  histograms.
- :class:`StallWatchdog` watches the parent's in-flight table between
  pool completions.  It keeps an EWMA of observed task durations and
  flags any unit that has been out for more than ``multiple`` times
  that average (never less than ``min_stall_s``), emitting one
  ``task.stall`` event per affected task index.  Stalls are surfaced by
  the progress renderer (``N stalled!``) and counted into the run
  ledger record (``n_stalls``).

**Determinism note.**  ``worker.heartbeat`` and ``task.stall`` are
*pool-only* events driven by wall-clock behavior; they are explicitly
outside the ``--jobs 1`` identity-stream contract
(:mod:`repro.obs.events`), which serial runs keep bit-for-bit.  A
watchdog can misfire on a genuinely slow (not hung) task — a stall
event is a *warning* by default: the executor's failure isolation
already bounds the damage of a truly dead worker.  With
``stall_action="retry"`` the executor additionally abandons a flagged
unit's future and re-dispatches its tasks, racing the zombie; the first
completion wins, so a misfire costs duplicated work, never a wrong or
missing result.
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping

from repro.obs import events

__all__ = ["StallWatchdog", "sample_resources"]

#: EWMA smoothing for observed task durations — matches the progress
#: renderer's completion-gap smoothing: recent tasks dominate, history
#: decays in ~10 completions.
_EWMA_ALPHA = 0.3


def _proc_rss_bytes() -> "int | None":
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024  # kB -> bytes
    except (OSError, ValueError, IndexError):
        return None
    return None


def _proc_cpu_s() -> "float | None":
    try:
        with open("/proc/self/stat") as fh:
            fields = fh.read().rsplit(")", 1)[1].split()
        # utime + stime are fields 14/15 (1-based) of /proc/[pid]/stat;
        # after stripping "pid (comm)" they sit at offsets 11/12.
        ticks = int(fields[11]) + int(fields[12])
        return ticks / os.sysconf("SC_CLK_TCK")
    except (OSError, ValueError, IndexError):
        return None


def sample_resources() -> dict:
    """One plain-data health sample of the calling process.

    ``{"pid": ..., "rss_bytes": ..., "cpu_s": ...}`` — RSS and CPU from
    ``/proc`` where available, else :func:`resource.getrusage`
    (``ru_maxrss`` is a peak, not current, but the honest portable
    fallback).  Never raises: a platform with neither source reports
    zeros rather than breaking the result channel.
    """
    rss = _proc_rss_bytes()
    cpu = _proc_cpu_s()
    if rss is None or cpu is None:
        try:
            import resource

            ru = resource.getrusage(resource.RUSAGE_SELF)
            if rss is None:
                rss = int(ru.ru_maxrss) * 1024  # kB on Linux
            if cpu is None:
                cpu = float(ru.ru_utime + ru.ru_stime)
        except (ImportError, ValueError, OSError):
            pass
    return {"pid": os.getpid(), "rss_bytes": int(rss or 0),
            "cpu_s": float(cpu or 0.0)}


class StallWatchdog:
    """Flags in-flight pool units that outlive the typical task by far.

    Parameters
    ----------
    multiple:
        How many EWMA task durations a unit may be out before it is
        considered stalled (per task of the unit, since a batched block
        legitimately takes ``n_tasks`` times longer than one task).
    min_stall_s:
        Absolute floor for the stall threshold — also the threshold
        used before any completion has seeded the EWMA.  Keeps a noisy
        first completion from flagging a healthy warm-up.
    poll_s:
        How often the executor's completion loop wakes up to
        :meth:`scan` when futures are in flight.
    """

    def __init__(self, multiple: float = 4.0, min_stall_s: float = 5.0,
                 poll_s: float = 0.25) -> None:
        if multiple <= 0 or min_stall_s <= 0 or poll_s <= 0:
            raise ValueError("StallWatchdog thresholds must be positive")
        self.multiple = float(multiple)
        self.min_stall_s = float(min_stall_s)
        self.poll_s = float(poll_s)
        self.ewma_s: "float | None" = None
        self.n_stalled = 0
        self._flagged: "set[int]" = set()

    def note_duration(self, duration_s: float) -> None:
        """Feed one completed task's duration into the EWMA."""
        if duration_s < 0:
            return
        if self.ewma_s is None:
            self.ewma_s = float(duration_s)
        else:
            self.ewma_s = (_EWMA_ALPHA * float(duration_s)
                           + (1.0 - _EWMA_ALPHA) * self.ewma_s)

    def threshold_s(self, n_tasks: int = 1) -> float:
        """Age beyond which an ``n_tasks``-task unit counts as stalled."""
        if self.ewma_s is None:
            return self.min_stall_s
        return max(self.min_stall_s,
                   self.multiple * self.ewma_s * max(1, n_tasks))

    def scan_flagged(self, in_flight: "Mapping[Any, tuple]",
                     now: "float | None" = None) -> "list[Any]":
        """Check the in-flight table; emit ``task.stall`` for new stalls.

        ``in_flight`` maps a future (any hashable token) to ``(unit,
        submit_t)`` where ``unit`` is the executor's tuple of ``(pos,
        spec)`` pairs and ``submit_t`` its ``perf_counter`` submission
        time.  Each unit is flagged at most once; returns the tokens
        newly flagged on this scan — what the executor needs to act on a
        stall (``stall_action="retry"`` abandons exactly these futures).
        """
        if now is None:
            now = time.perf_counter()
        flagged: "list[Any]" = []
        for token, (unit, submit_t) in in_flight.items():
            key = id(token)
            if key in self._flagged:
                continue
            if now - submit_t <= self.threshold_s(len(unit)):
                continue
            self._flagged.add(key)
            flagged.append(token)
            for _pos, spec in unit:
                self.n_stalled += 1
                events.emit("task.stall", index=spec.index)
        return flagged

    def scan(self, in_flight: "Mapping[Any, tuple]",
             now: "float | None" = None) -> "list[int]":
        """Like :meth:`scan_flagged`, returning newly stalled task indexes."""
        stalled: "list[int]" = []
        for token in self.scan_flagged(in_flight, now):
            unit, _submit_t = in_flight[token]
            stalled.extend(spec.index for _pos, spec in unit)
        return stalled

    def forget(self, token: Any) -> None:
        """Drop a completed future's flag (it came back after all)."""
        self._flagged.discard(id(token))
