"""Structured lifecycle event bus: the live counterpart of telemetry.

Where :mod:`repro.telemetry` answers *"where did the time go?"* after a
run, this bus answers *"what is happening right now?"* during one.
Emission sites publish typed lifecycle events through the module-level
fast path::

    from repro.obs import events

    events.emit("task.done", index=spec.index)

which is a no-op — one global ``None`` check, no clock reads, no dict
allocation — unless a live consumer (the CLI's progress renderer / run
ledger session) has called :func:`enable`.  Keyword arguments become the
event's data payload; subscribers (renderer, run tracker) see every
event synchronously, in emission order.

**Determinism contract.**  An event's *identity* is ``(seq, name,
data)`` — its position, type, and payload.  Timestamps are carried
separately and excluded from :meth:`EventBus.identity`, so two runs of
the same campaign with the same seed and ``--jobs 1`` produce *equal*
identity streams.  Event payloads must therefore never contain
durations, wall-clock values, tracebacks, or memory addresses — put
those in telemetry spans or the run ledger instead.

**Cross-process transport.**  Pool workers enable a fresh bus of their
own, and the executor ships :meth:`EventBus.drain`'s plain tuples back
through the existing pickled result channel; the parent re-sequences
them via :func:`absorb`.  Worker-local ``run.*`` events are dropped on
absorption: a worker executing one unit of a campaign is *inside* the
parent's run, and its private run lifecycle would corrupt the parent's
totals.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = [
    "EVENT_VERSION",
    "KNOWN_EVENTS",
    "EventBus",
    "absorb",
    "current_bus",
    "disable",
    "emit",
    "enable",
    "enabled",
    "in_run",
]

#: Version of the event schema (names + payload conventions).  Bump on
#: renames or payload-shape changes and note it in the PR description —
#: ledger records carry it so old records stay interpretable.  v2 added
#: the fault-tolerance events: ``task.retry``, ``task.quarantined``,
#: ``pool.respawn``.
EVENT_VERSION = 2

#: The typed lifecycle vocabulary.  ``emit`` does not enforce membership
#: (forward compatibility for downstream consumers), but events outside
#: this set are invisible to the progress renderer and the run tracker.
#:
#: The ``worker.*`` family, ``task.stall``, and ``pool.respawn`` are
#: **pool-only**: they describe wall-clock health (heartbeats, stalled
#: tasks, dead workers) that serial runs never emit, so the ``--jobs 1``
#: identity-stream determinism contract above is unaffected.  Their
#: payloads still follow the rules (no durations or timestamps in
#: ``data``) — resource figures like ``rss_bytes`` are measurements,
#: carried because these events are already outside the identity
#: contract by construction.  ``task.retry`` (payload: ``index``,
#: ``attempt``) fires for both worker-side soft retries — deterministic
#: given deterministic failures, e.g. under the chaos harness — and
#: pool-side re-dispatches after a worker death or abandoned stall,
#: which are pool-only like the events that caused them.
#: ``task.quarantined`` precedes the ``task.failed`` of a task the
#: executor refuses to run again.
KNOWN_EVENTS = frozenset({
    "run.start", "run.finish",
    "task.submit", "task.start", "task.done", "task.failed",
    "task.cache_hit", "task.stall", "task.retry", "task.quarantined",
    "block.dispatch", "block.fallback",
    "worker.heartbeat", "pool.respawn",
    "report.phase",
})


class EventBus:
    """An in-process ordered stream of lifecycle events.

    Events are stored as plain tuples ``(seq, name, t, wall, data)``:

    - ``seq``: 0-based emission order on *this* bus;
    - ``name``: dotted lowercase event type (see :data:`KNOWN_EVENTS`);
    - ``t``: seconds since the bus was created (``perf_counter`` based);
    - ``wall``: Unix timestamp of emission;
    - ``data``: payload dict, or ``None`` — the part that must stay
      deterministic.

    Not thread-safe by design: emission happens on the owning thread
    (the executor's completion loop, or a worker's task code), exactly
    like the telemetry recorder.
    """

    __slots__ = ("events", "subscribers", "_t0", "_run_depth")

    def __init__(self) -> None:
        self.events: "list[tuple]" = []
        self.subscribers: "list[Callable[[tuple], None]]" = []
        self._t0 = time.perf_counter()
        self._run_depth = 0

    # -- emission -----------------------------------------------------

    def emit(self, name: str, /, **data: Any) -> tuple:
        """Record one event and notify subscribers synchronously."""
        event = (len(self.events), name, time.perf_counter() - self._t0,
                 time.time(), data or None)
        self.events.append(event)
        if name == "run.start":
            self._run_depth += 1
        elif name == "run.finish":
            self._run_depth = max(0, self._run_depth - 1)
        for callback in self.subscribers:
            callback(event)
        return event

    # -- subscription -------------------------------------------------

    def subscribe(self, callback: "Callable[[tuple], None]") -> None:
        """Attach a synchronous per-event callback (renderer, tracker)."""
        self.subscribers.append(callback)

    def unsubscribe(self, callback: "Callable[[tuple], None]") -> None:
        if callback in self.subscribers:
            self.subscribers.remove(callback)

    # -- inspection ---------------------------------------------------

    @property
    def t0(self) -> float:
        """The bus epoch: ``perf_counter()`` at creation.

        Event ``t`` values are relative to it; consumers that must line
        events up with telemetry spans (whose starts live in the raw
        ``perf_counter`` domain) add it back.
        """
        return self._t0

    def __len__(self) -> int:
        return len(self.events)

    def identity(self) -> "list[tuple]":
        """The deterministic view: ``(seq, name, data)`` per event.

        Two equal-seed ``--jobs 1`` runs of the same campaign must
        produce equal identity streams; tests compare exactly this.
        """
        return [(seq, name, data) for seq, name, _, _, data in self.events]

    def counts(self) -> "dict[str, int]":
        """Events per name — a quick invariant check for tests."""
        out: "dict[str, int]" = {}
        for _, name, _, _, _ in self.events:
            out[name] = out.get(name, 0) + 1
        return out

    # -- cross-process transport --------------------------------------

    def drain(self) -> "list[tuple]":
        """Detach all events as ``(name, t, wall, data)`` transport tuples.

        Sequence numbers are dropped — the absorbing parent assigns
        fresh ones — so the payload pickles small and merges cleanly.
        """
        drained = [(name, t, wall, data)
                   for _, name, t, wall, data in self.events]
        self.events.clear()
        return drained

    def mark_in_run(self) -> None:
        """Declare this bus *inside* an enclosing run without an event.

        Pool workers call this (via :func:`enable`) so task code that
        would own a run lifecycle at top level — e.g. ``run_scenario``
        inside ``scenario_task`` — stays silent: the worker is by
        definition executing one unit of the parent's run.
        """
        self._run_depth += 1

    def unmark_in_run(self) -> None:
        """Undo one :meth:`mark_in_run` (clamped at zero)."""
        self._run_depth = max(0, self._run_depth - 1)

    def absorb(self, drained: "list[tuple]") -> None:
        """Append a worker's drained events, re-sequenced onto this bus.

        Worker-local ``run.*`` events are dropped: the worker ran inside
        the parent's run, and a nested lifecycle would double-start the
        consumers (see the module docstring).
        """
        for name, _t, _wall, data in drained:
            if name.startswith("run."):
                continue
            if data:
                self.emit(name, **data)
            else:
                self.emit(name)


# -- module-level fast path -------------------------------------------

_BUS: "EventBus | None" = None

#: Shared immutable "nothing happened" event, returned by the disabled
#: :func:`emit` so call sites never branch on the return value.
_NULL_EVENT: tuple = (-1, "", 0.0, 0.0, None)


def enable(fresh: bool = True, in_run: bool = False) -> EventBus:
    """Install (and return) the process-wide bus; idempotent per process.

    ``fresh`` (the default) replaces any live bus — pool workers call
    this to discard the stale bus copy a fork-started worker inherits
    from an observing parent.  ``in_run`` marks the new bus as already
    inside an enclosing run (see :meth:`EventBus.mark_in_run`).
    """
    global _BUS
    if _BUS is None or fresh:
        _BUS = EventBus()
    if in_run:
        _BUS.mark_in_run()
    return _BUS


def disable() -> "EventBus | None":
    """Uninstall and return the live bus (``None`` if already disabled)."""
    global _BUS
    bus, _BUS = _BUS, None
    return bus


def enabled() -> bool:
    return _BUS is not None


def current_bus() -> "EventBus | None":
    return _BUS


def in_run() -> bool:
    """True while a ``run.start`` has been emitted without its finish.

    Runners use this to emit run lifecycle events only when they *own*
    the run: a scenario executed as one task of a sweep (or a report's
    campaign) is inside the outer run and must stay silent.
    """
    return _BUS is not None and _BUS._run_depth > 0


def emit(name: str, /, **data: Any) -> tuple:
    """Emit one event on the live bus; a single ``None`` check when off."""
    if _BUS is None:
        return _NULL_EVENT
    return _BUS.emit(name, **data)


def absorb(drained: "list[tuple] | None") -> None:
    """Merge a worker's drained events into the live bus (no-op when off)."""
    if _BUS is None or not drained:
        return
    _BUS.absorb(drained)
