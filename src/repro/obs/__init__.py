"""Live run observability: event bus, progress rendering, run ledger.

Three cooperating pieces, layered over (not into) the simulation code:

- :mod:`repro.obs.events` — the structured lifecycle event bus.
  Emission sites in the executor and runners publish typed events
  (``run.start``, ``task.done``, ``block.fallback``, …) through a
  module-level fast path that costs one ``None`` check when no consumer
  is attached — the same discipline as the telemetry recorder.
- :mod:`repro.obs.progress` — a TTY-aware single-line renderer
  (throughput, cache-hit rate, EWMA-based ETA) subscribed to the bus.
- :mod:`repro.obs.ledger` / :mod:`repro.obs.session` — per-run
  provenance records under ``<cache-dir>/runs/`` and the
  :func:`observe_run` context manager that wires a whole CLI run
  together.  ``repro-experiment runs ls|show|tail`` queries the ledger.

Observability is pure: enabling it never changes engine outputs or the
bytes the store persists (enforced by ``tests/scenarios/test_batch.py``
and ``benchmarks/bench_obs.py``).
"""

from repro.obs import events
from repro.obs.events import EVENT_VERSION, EventBus, KNOWN_EVENTS
from repro.obs.ledger import (
    RUN_RECORD_VERSION,
    RunLedger,
    RunTracker,
    render_run_summary,
)
from repro.obs.progress import ProgressRenderer
from repro.obs.session import observe_run

__all__ = [
    "EVENT_VERSION",
    "EventBus",
    "KNOWN_EVENTS",
    "ProgressRenderer",
    "RUN_RECORD_VERSION",
    "RunLedger",
    "RunTracker",
    "events",
    "observe_run",
    "render_run_summary",
]
