"""Ablation: is the decay-vs-noise correlation distribution-specific?

The paper injects exponentially distributed noise "to mimic the natural
noise distribution".  This bench repeats the Fig. 8 measurement with
equal-mean noise of different shapes (exponential, gamma k=4, uniform,
bimodal) and shows that the positive decay correlation is driven by the
noise *level*, not its exact distribution — with heavier tails decaying
somewhat faster at equal mean.
"""

import numpy as np

from repro.core import measure_decay
from repro.sim import (
    BimodalNoise,
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    GammaNoise,
    LockstepConfig,
    UniformNoise,
    simulate_lockstep,
)
from repro.viz.tables import format_table

T = 3e-3
MEAN = 0.08 * T  # 8% mean relative delay for every model


def models():
    return [
        ("exponential", ExponentialNoise(MEAN)),
        ("gamma k=4", GammaNoise(MEAN, shape_k=4.0)),
        ("uniform", UniformNoise(0.0, 2 * MEAN)),
        ("bimodal", BimodalNoise(base=ExponentialNoise(MEAN / 2),
                                 spike_delay=40 * MEAN / 2,
                                 spike_probability=0.025, spike_jitter=0.1)),
    ]


def decay_for(noise, seed):
    cfg = LockstepConfig(
        n_ranks=50, n_steps=60, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=(DelaySpec(rank=0, step=0, duration=60e-3),),
        noise=noise,
        seed=seed,
    )
    return measure_decay(simulate_lockstep(cfg), source=0, periodic=True).beta


def sweep():
    out = []
    for name, noise in models():
        betas = [decay_for(noise, seed) for seed in range(8)]
        out.append((name, noise.mean(), float(np.median(betas)),
                    float(min(betas)), float(max(betas))))
    return out


def test_bench_noise_model_shapes(once):
    rows = once(sweep)
    print()
    print(format_table(
        ["noise model", "mean [s]", "median β̄ [s/rank]", "min", "max"], rows,
        float_fmt="{:.3g}",
    ))

    # Every distribution at this level damps the wave (positive decay) ...
    for name, mean, median_beta, lo, hi in rows:
        assert median_beta > 0, name
    # ... and all means were indeed equal.
    means = {round(mean, 12) for _, mean, *_ in rows}
    assert len(means) == 1
