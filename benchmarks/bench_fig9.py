"""Benchmark: regenerate Fig. 9 — idle-period elimination.

Prints the elimination scan (runtime with/without delay, excess, run-to-run
spread) and asserts the shape: full excess at E=0, shrinking with E.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_fig9_elimination(once):
    result = once(run_experiment, "fig9", fast=True)
    print()
    print(result.render())

    points = result.data["points"]
    assert points[0].excess == pytest.approx(result.data["delay"], rel=0.01)
    excesses = [p.excess for p in points]
    assert excesses == sorted(excesses, reverse=True)
    # E=0 matches the paper's 51.1 ms total.
    assert points[0].runtime_with_delay == pytest.approx(51.1e-3, rel=0.01)
