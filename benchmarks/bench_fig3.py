"""Benchmark: regenerate Fig. 3 — natural noise histograms.

Prints the per-system/per-SMT summary rows and asserts the calibration:
SMT-on means 2.4/2.8 µs, Meggie SMT-off bimodal with the ~660 µs driver
mode.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_fig3_noise_histograms(once):
    result = once(run_experiment, "fig3", fast=True)
    print()
    print(result.render())

    hists = result.data["histograms"]
    assert hists["Emmy (InfiniBand) / SMT on"].mean == pytest.approx(2.4e-6, rel=0.1)
    assert hists["Meggie (Omni-Path) / SMT on"].mean == pytest.approx(2.8e-6, rel=0.1)
    meggie_off = hists["Meggie (Omni-Path) / SMT off"]
    assert meggie_off.is_bimodal(min_separation=100e-6)
