"""Ablation: hierarchical topology and the wave speed.

The paper's outlook (Sec. VII) predicts that "the propagation speed changes
whenever a domain boundary is crossed" because T_comm differs between
intra-socket, inter-socket and inter-node links.  This bench measures the
per-hop front arrival gaps of a wave crossing node boundaries under a
hierarchy-aware network model with deliberately slow inter-node links, and
compares against a flat network.
"""

import numpy as np

from repro.core import wave_front
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    HockneyModel,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.topology import CommDomain, single_switch_mapping
from repro.viz.tables import format_table

T = 3e-3
MSG = 200_000  # large enough that bandwidth differences matter


def run(network, mapping):
    cfg = LockstepConfig(
        n_ranks=16, n_steps=20, t_exec=T, msg_size=MSG,
        pattern=CommPattern(direction=Direction.UNIDIRECTIONAL),
        delays=(DelaySpec(rank=0, step=0, duration=6 * T),),
    )
    return simulate(
        build_lockstep_program(cfg), SimConfig(network=network, mapping=mapping)
    )


def sweep():
    mapping = single_switch_mapping(16, ppn=4, cores_per_socket=2)
    slow_internode = HockneyModel(
        latency={CommDomain.INTRA_SOCKET: 3e-7, CommDomain.INTER_SOCKET: 6e-7,
                 CommDomain.INTER_NODE: 5e-5},
        bandwidth={CommDomain.INTRA_SOCKET: 8e9, CommDomain.INTER_SOCKET: 5e9,
                   CommDomain.INTER_NODE: 2e8},  # deliberately slow
    )
    hier = run(slow_internode, mapping)
    flat = run(UniformNetwork(), None)
    gaps_h = np.diff(wave_front(hier, 0, +1).arrival_times)
    gaps_f = np.diff(wave_front(flat, 0, +1).arrival_times)
    return mapping, gaps_h, gaps_f


def test_bench_topology_speed_modulation(once):
    mapping, gaps_h, gaps_f = once(sweep)
    # gaps[i] is the front's travel time across the link (rank i+1, rank i+2):
    # arrival(hop i+2) - arrival(hop i+1), and hop h sits on rank h.
    links = [(i + 1, i + 2) for i in range(len(gaps_h))]
    rows = []
    for (a, b), gh, gf in zip(links, gaps_h, gaps_f):
        rows.append((f"{a}->{b}", mapping.domain(a, b).name, gh * 1e3, gf * 1e3))
    print()
    print(format_table(["link", "link domain", "hier gap [ms]", "flat gap [ms]"], rows))

    # Flat network: constant speed — all gaps equal.
    assert np.ptp(gaps_f) < 0.05 * gaps_f.mean()
    # Hierarchy: the paper's outlook claim — "the propagation speed changes
    # whenever a domain boundary is crossed".  The per-hop gaps become
    # strongly non-uniform (pipeline tilt redistributes the link costs, so
    # the modulation is not a naive per-link map), and the wave is slower
    # on average than on the flat network.
    assert np.ptp(gaps_h) > 0.3 * gaps_h.mean()
    assert gaps_h.mean() > 1.1 * gaps_f.mean()
    # The expensive domains are present in the path (sanity of the setup).
    domains = {mapping.domain(a, b) for a, b in links}
    assert CommDomain.INTER_NODE in domains and CommDomain.INTRA_SOCKET in domains
