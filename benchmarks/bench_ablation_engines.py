"""Ablation: DAG engine vs. vectorized lockstep engine.

DESIGN.md decision 2 ("two engines, one contract"): the lockstep engine
exists purely for performance.  This bench quantifies the speedup on a
mid-size run and re-checks the exactness contract on the benchmarked
configuration.
"""

import numpy as np
import pytest

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_exec_times,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
)

T = 3e-3


@pytest.fixture(scope="module")
def scenario():
    cfg = LockstepConfig(
        n_ranks=64,
        n_steps=60,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=(DelaySpec(rank=5, step=0, duration=10 * T),),
        noise=ExponentialNoise(1e-4),
        seed=3,
    )
    return cfg, build_exec_times(cfg), UniformNetwork()


def test_bench_dag_engine(benchmark, scenario):
    cfg, exec_times, net = scenario
    trace = benchmark(
        lambda: simulate(build_lockstep_program(cfg, exec_times),
                         SimConfig(network=net))
    )
    assert trace.total_runtime() > 0


def test_bench_lockstep_engine(benchmark, scenario):
    cfg, exec_times, net = scenario
    res = benchmark(lambda: simulate_lockstep(cfg, exec_times=exec_times, network=net))
    assert res.total_runtime() > 0


def test_engines_agree_on_benchmarked_config(scenario):
    cfg, exec_times, net = scenario
    trace = simulate(build_lockstep_program(cfg, exec_times), SimConfig(network=net))
    res = simulate_lockstep(cfg, exec_times=exec_times, network=net)
    np.testing.assert_allclose(res.completion, trace.completion_matrix(), atol=1e-12)
