"""Benchmark: regenerate Fig. 4 — basic delay propagation.

Prints the rank/time diagram and the wave-front arrival rows; asserts the
measured speed against Eq. 2 and the absence of backward propagation.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_fig4_basic_propagation(once):
    result = once(run_experiment, "fig4", fast=True)
    print()
    print(result.render())

    assert result.data["speed"] == pytest.approx(result.data["model_speed"], rel=0.01)
    assert result.data["downward_reach"] == 0
