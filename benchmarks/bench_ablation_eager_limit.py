"""Ablation: the eager-limit protocol crossover.

Sweeps the message size across the eager limit and records the backward
reach of the idle wave — the structural signature of the protocol switch
(Sec. II-C1: implementations let users tune this limit, changing the
propagation physics).
"""

from repro.core import wave_front
from repro.experiments.fig5_flavors import EAGER_LIMIT
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.viz.tables import format_table

T = 3e-3
SIZES = [4096, 65536, 131072, 131073, 262144, 1048576]


def sweep():
    rows = []
    for size in SIZES:
        cfg = LockstepConfig(
            n_ranks=16, n_steps=16, t_exec=T, msg_size=size,
            pattern=CommPattern(direction=Direction.UNIDIRECTIONAL),
            delays=(DelaySpec(rank=8, step=0, duration=5 * T),),
        )
        trace = simulate(
            build_lockstep_program(cfg),
            SimConfig(network=UniformNetwork(), eager_limit=EAGER_LIMIT),
        )
        down = wave_front(trace, 8, -1).reach
        up = wave_front(trace, 8, +1).reach
        rows.append((size, "eager" if size <= EAGER_LIMIT else "rendezvous", up, down))
    return rows


def test_bench_eager_limit_crossover(once):
    rows = once(sweep)
    print()
    print(format_table(["msg [B]", "protocol", "up reach", "down reach"], rows))

    for size, proto, up, down in rows:
        assert up > 0
        if proto == "eager":
            assert down == 0, f"eager {size} must not propagate backwards"
        else:
            assert down > 0, f"rendezvous {size} must propagate backwards"
