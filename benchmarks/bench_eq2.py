"""Benchmark: the Eq. 2 validation sweep.

Prints the model-vs-measured table over (d, direction, protocol, T_exec,
message size) and asserts sub-percent accuracy.
"""

from repro.experiments import run_experiment


def test_bench_eq2_speed_model(once):
    result = once(run_experiment, "eq2", fast=True)
    print()
    print(result.render())

    assert result.data["max_error_pct"] < 1.0
