"""Benchmark: the parallel campaign runtime itself.

Measures the two properties the subsystem exists for, on a 32-run
lockstep delay campaign (``repro.runtime.tasks.lockstep_delay_task``):

- **parallel speedup** — the same campaign sharded over 4 worker
  processes vs. executed serially.  The wall-clock ratio is printed
  always and asserted (>= 2x) only when the machine actually has >= 4
  CPUs; either way both backends must produce bit-identical values.
- **cache-hit latency** — a warm-cache rerun must complete without a
  single engine invocation (asserted via an in-process call counter)
  and in a small fraction of the cold time.
"""

import os
import time

import pytest

import repro.runtime.tasks as tasks_mod
from repro.runtime import ResultStore, SweepSpec, run_campaign

N_RUNS = 32

SWEEP = SweepSpec(
    fn="repro.runtime.tasks:lockstep_delay_task",
    base={
        "n_ranks": 60, "n_steps": 60, "t_exec": 3e-3, "msg_size": 8192,
        "rate": 0.01, "duration_low": 6e-3, "duration_high": 24e-3,
        "reps": 10,
    },
    axes=(("replicate", tuple(range(N_RUNS))),),
    base_seed=0,
)


def test_bench_runtime_parallel_speedup(once, bench_record):
    tasks = SWEEP.tasks()

    def compare():
        t0 = time.perf_counter()
        serial = run_campaign(tasks, jobs=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded = run_campaign(tasks, jobs=4)
        t_sharded = time.perf_counter() - t0
        return serial, sharded, t_serial, t_sharded

    serial, sharded, t_serial, t_sharded = once(compare)
    print(f"\nserial {t_serial:.2f}s vs 4 jobs {t_sharded:.2f}s "
          f"(speedup {t_serial / t_sharded:.2f}x on {os.cpu_count()} CPUs)")
    bench_record(n_runs=N_RUNS, jobs=4, cpus=os.cpu_count(),
                 t_serial_s=t_serial, t_sharded_s=t_sharded,
                 speedup=t_serial / t_sharded)

    assert not serial.failures and not sharded.failures
    # Sharding must never change values: bit-identical campaign results.
    assert serial.values() == sharded.values()
    if (os.cpu_count() or 1) >= 4:
        assert t_serial / t_sharded >= 2.0
    else:
        pytest.skip(f"speedup assertion needs >= 4 CPUs, have {os.cpu_count()}")


def test_bench_runtime_cache_hit(once, tmp_path, monkeypatch, bench_record):
    store = ResultStore(tmp_path / "store")
    tasks = SWEEP.tasks()

    calls = {"n": 0}
    real_simulate = tasks_mod.simulate_lockstep

    def counting_simulate(*args, **kwargs):
        calls["n"] += 1
        return real_simulate(*args, **kwargs)

    monkeypatch.setattr(tasks_mod, "simulate_lockstep", counting_simulate)

    t0 = time.perf_counter()
    cold = run_campaign(tasks, jobs=1, store=store)
    t_cold = time.perf_counter() - t0
    assert not cold.failures
    calls_cold = calls["n"]
    assert calls_cold > 0

    warm = once(run_campaign, tasks, jobs=1, store=store)
    t_warm = warm.elapsed
    print(f"\ncold {t_cold:.2f}s ({calls_cold} engine calls) vs "
          f"warm {t_warm * 1e3:.1f}ms ({calls['n'] - calls_cold} engine calls)")
    bench_record(n_runs=N_RUNS, t_cold_s=t_cold, t_warm_s=t_warm,
                 speedup=t_cold / max(t_warm, 1e-9),
                 engine_calls_cold=calls_cold,
                 engine_calls_warm=calls["n"] - calls_cold)

    # Zero engine invocations on the warm rerun, and identical values.
    assert calls["n"] == calls_cold
    assert warm.n_cached == len(tasks) and warm.n_executed == 0
    assert warm.values() == cold.values()
    assert t_warm < t_cold / 2


def test_bench_runtime_chaos_recovery(chaos_mode, once, bench_record):
    """Campaign under deterministic fault injection (``--chaos`` only).

    Installs a 25% crash-rate chaos spec and reruns the standard sweep
    with a retry budget that covers the per-task fault bound.  The
    campaign must heal to bit-identical values; the recovery economics
    (retries, wasted seconds, overhead ratio vs. the fault-free run)
    land in the benchmark ledger so the retry tax is trend-tracked.
    """
    from repro.runtime import RetryPolicy, chaos
    from repro.runtime.chaos import ChaosSpec

    tasks = SWEEP.tasks()
    t0 = time.perf_counter()
    clean = run_campaign(tasks, jobs=4)
    t_clean = time.perf_counter() - t0
    assert not clean.failures

    chaos.install(ChaosSpec(seed=7, crash_rate=0.25, max_faults_per_task=2))
    try:
        chaotic = once(run_campaign, tasks, jobs=4,
                       retry=RetryPolicy(retries=2, backoff_s=0.01))
    finally:
        chaos.uninstall()
    t_chaotic = chaotic.elapsed

    print(f"\nfault-free {t_clean:.2f}s vs chaotic {t_chaotic:.2f}s "
          f"({chaotic.n_retried} retries, "
          f"{chaotic.retry_wasted_s:.2f}s wasted)")
    bench_record(n_runs=N_RUNS, jobs=4, crash_rate=0.25,
                 t_clean_s=t_clean, t_chaotic_s=t_chaotic,
                 n_retried=chaotic.n_retried,
                 retry_wasted_s=chaotic.retry_wasted_s,
                 retries_per_task=chaotic.n_retried / len(tasks),
                 overhead=t_chaotic / max(t_clean, 1e-9))

    # Injected faults must be invisible in the data.
    assert not chaotic.failures
    assert chaotic.n_retried > 0
    assert chaotic.values() == clean.values()
