#!/usr/bin/env python
"""CI benchmark regression guard: fresh ``BENCH_*.json`` vs baselines.

Every benchmark module records its headline numbers through the
``bench_record`` conftest hook into ``BENCH_<name>.json``.  This script
compares the asserted **ratio** fields (``speedup`` — machine-relative,
hence comparable across hosts, unlike absolute timings) of freshly
emitted files against the committed baselines under
``benchmarks/baselines/`` and fails when any ratio regressed by more
than the threshold (default 30%)::

    python benchmarks/check_regression.py --fresh bench-out \\
        --baselines benchmarks/baselines [--threshold 0.30]

Rules:

- a fresh ``speedup`` below ``(1 - threshold) * baseline`` is a
  **regression** → exit 1;
- a baseline file without a fresh counterpart is **skipped** with a note
  (local runs of a benchmark subset stay usable); pass ``--require-all``
  to turn that into a failure (what CI does);
- fresh files or tests without a baseline are **new** — reported, never
  failed, so adding a benchmark does not require touching this script.

Baselines are intentionally conservative (see ``baselines/README.md``):
they gate against collapses of the architectural wins, not against
run-to-run noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Record fields treated as asserted ratios.  Absolute timings
#: (``t_*_s``) are machine-dependent and deliberately not compared.
RATIO_FIELDS = ("speedup",)

#: Informational telemetry fields printed next to each ratio under
#: ``--telemetry`` — never compared, never failed (hit rates depend on
#: workload shape, not on performance health).
TELEMETRY_FIELDS = ("cache_hit_rate", "overhead_fraction")


def iter_ratios(payload: dict):
    """Yield ``(test_name, field, value)`` for every ratio field."""
    for test_name, fields in sorted(payload.get("tests", {}).items()):
        for field in RATIO_FIELDS:
            value = fields.get(field)
            if isinstance(value, (int, float)):
                yield test_name, field, float(value)


def telemetry_note(fields: dict) -> str:
    """Render the informational telemetry fields of one fresh record."""
    parts = []
    for field in TELEMETRY_FIELDS:
        value = fields.get(field)
        if isinstance(value, (int, float)):
            parts.append(f"{field}={value * 100:.1f}%")
    return f"  [{', '.join(parts)}]" if parts else ""


def check(fresh_dir: Path, baseline_dir: Path, threshold: float,
          require_all: bool = False, telemetry: bool = False) -> int:
    """Compare fresh emissions against baselines; returns the exit code."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {baseline_dir}", file=sys.stderr)
        return 2

    regressions: list[str] = []
    missing: list[str] = []
    n_checked = 0

    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            missing.append(base_path.name)
            continue
        base = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        fresh_tests = fresh.get("tests", {})
        for test_name, field, base_value in iter_ratios(base):
            fresh_value = fresh_tests.get(test_name, {}).get(field)
            if not isinstance(fresh_value, (int, float)):
                print(f"new/renamed: {base_path.name}::{test_name} has no "
                      f"fresh {field!r} — not compared")
                continue
            n_checked += 1
            floor = (1.0 - threshold) * base_value
            status = "REGRESSION" if fresh_value < floor else "ok"
            note = telemetry_note(fresh_tests.get(test_name, {})) \
                if telemetry else ""
            print(f"{status:>10}  {base_path.name}::{test_name} {field}: "
                  f"fresh {fresh_value:.2f} vs baseline {base_value:.2f} "
                  f"(floor {floor:.2f}){note}")
            if fresh_value < floor:
                regressions.append(
                    f"{base_path.name}::{test_name} {field} "
                    f"{fresh_value:.2f} < {floor:.2f}"
                )

    for name in missing:
        print(f"{'MISSING' if require_all else 'skipped':>10}  {name}: "
              "no fresh emission")

    if regressions:
        print(f"\n[{len(regressions)} ratio(s) regressed >"
              f"{threshold:.0%} below baseline]", file=sys.stderr)
        return 1
    if require_all and missing:
        print(f"\n[{len(missing)} baseline(s) had no fresh emission]",
              file=sys.stderr)
        return 1
    print(f"\n[{n_checked} ratio(s) within {threshold:.0%} of baseline]")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh BENCH_*.json regresses an asserted "
                    "speedup ratio by more than the threshold.",
    )
    parser.add_argument("--fresh", type=Path, default=Path("."),
                        metavar="DIR", help="directory holding freshly "
                        "emitted BENCH_*.json (default: .)")
    parser.add_argument("--baselines", type=Path,
                        default=Path(__file__).parent / "baselines",
                        metavar="DIR", help="committed baseline directory")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated relative regression "
                             "(default: 0.30)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail if any baseline has no fresh emission")
    parser.add_argument("--telemetry", action="store_true",
                        help="print recorded telemetry fields (cache hit "
                             "rate, overhead) next to each ratio; "
                             "informational only, never failed on")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")
    return check(args.fresh, args.baselines, args.threshold, args.require_all,
                 telemetry=args.telemetry)


if __name__ == "__main__":
    sys.exit(main())
