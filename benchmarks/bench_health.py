"""Benchmark: worker-health plumbing overhead on the pool backend.

The health layer (per-unit ``/proc`` resource samples riding the result
channel, parent-side heartbeat emission, and the stall watchdog's
timed-wait scan loop) runs on every observed pool campaign, so it
inherits the obs-layer contract: cheap enough to leave on.  Measured on
a 128-draw batched DAG campaign over two pool workers, a fully watched
run (bus + tracker + renderer + default watchdog + heartbeats) must
cost **< 2%** over an unwatched one — both sides timed as a min over
*interleaved* repetitions, pool startup excluded from neither (the
comparison is like-for-like).  Pool scheduling carries an irreducible
few-millisecond jitter even under min-of-reps, so the in-test assert
allows a small absolute noise floor on top of the 2% — the committed
``speedup`` ratio in ``baselines/BENCH_health.json`` is the durable
cross-run gate.

The component costs are gated separately so a regression names its
culprit: one :func:`sample_resources` call must stay under 200 µs, and
a watchdog scan of a 64-unit in-flight table under 1 ms.
"""

import io
import time

from repro.obs import events
from repro.obs.health import StallWatchdog, sample_resources
from repro.obs.ledger import RunTracker
from repro.obs.progress import ProgressRenderer
from repro.runtime import run_campaign
from repro.scenarios import (
    ScenarioTaskBatcher,
    load_bundled_scenario,
    scenario_sweep_spec,
)
from repro.scenarios.spec import ScenarioSpec, apply_overrides

N_DRAWS = 128
JOBS = 2
MAX_OVERHEAD = 0.02

#: Absolute pool-scheduling jitter tolerated on top of the 2% bound:
#: two process pools never time identically to the millisecond, and a
#: ratio-only assert on a sub-second workload flakes on that noise.
NOISE_FLOOR_S = 0.010


def _forced_dag_tasks():
    doc = load_bundled_scenario(
        "meggie_bimodal_rendezvous_campaign").without_sweep().to_dict()
    doc = apply_overrides(doc, {"n_ranks": 32, "n_steps": 25})
    doc["sweep"] = {"replicates": N_DRAWS}
    return scenario_sweep_spec(
        ScenarioSpec.from_dict(doc), engine="dag").tasks()


def _interleaved_mins(fn_a, fn_b, reps: int) -> "tuple[float, float]":
    """Min wall time of each callable over alternating repetitions.

    Alternating A/B (instead of timing all of A, then all of B) makes a
    transient system-wide slowdown hit both sides instead of biasing
    whichever happened to run during it — the overhead ratio is what is
    asserted, so the comparison must be like-for-like in time as well
    as in work.
    """
    best_a = best_b = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_bench_health_watched_pool_overhead(once, bench_record):
    """A watched 128-draw pool campaign (heartbeats + watchdog) costs < 2%."""
    tasks = _forced_dag_tasks()

    def plain():
        return run_campaign(tasks, jobs=JOBS, batcher=ScenarioTaskBatcher())

    def watched():
        bus = events.enable()
        tracker = RunTracker()
        bus.subscribe(tracker.handle)
        renderer = ProgressRenderer(stream=io.StringIO())
        bus.subscribe(renderer.handle)
        bus.emit("run.start", kind="scenario.sweep", name="bench_health",
                 n_tasks=len(tasks))
        try:
            return run_campaign(tasks, jobs=JOBS,
                                batcher=ScenarioTaskBatcher())
        finally:
            bus.emit("run.finish", status="ok")
            events.disable()

    # Warm every cache (DAG structure, numpy buffers, fork machinery).
    reference = plain()
    assert not events.enabled()

    reps = 9
    t_off, t_on = _interleaved_mins(plain, watched, reps)

    observed = watched()
    assert observed.values() == reference.values()  # observation is pure
    assert not events.enabled()

    once(plain)

    overhead = t_on / t_off - 1.0
    # Guarded as an off/on ratio so benchmarks/check_regression.py gates
    # it alongside the engine speedups: >= ~0.98 while the contract holds.
    bench_record(n_draws=N_DRAWS, jobs=JOBS, t_unwatched_s=t_off,
                 t_watched_s=t_on, overhead_fraction=overhead,
                 speedup=t_off / t_on)
    print(f"\nhealth overhead: unwatched {t_off * 1e3:.2f} ms, watched "
          f"{t_on * 1e3:.2f} ms ({overhead * 100:+.2f}%)")
    assert overhead < MAX_OVERHEAD or (t_on - t_off) < NOISE_FLOOR_S, (
        f"watched-pool overhead {overhead:.1%} >= {MAX_OVERHEAD:.0%} "
        f"(and {t_on - t_off:.3f}s > the {NOISE_FLOOR_S:.3f}s noise floor)"
    )


def test_bench_health_sample_cost(bench_record):
    """One resource sample (two /proc reads) stays under 200 µs."""
    sample_resources()  # warm the code path
    n = 500
    t0 = time.perf_counter()
    for _ in range(n):
        sample = sample_resources()
    per_sample = (time.perf_counter() - t0) / n
    assert sample["rss_bytes"] > 0
    bench_record(n_samples=n, t_per_sample_s=per_sample)
    print(f"\nresource sample: {per_sample * 1e6:.1f} us")
    assert per_sample < 200e-6, (
        f"sample_resources costs {per_sample * 1e6:.0f} us"
    )


def test_bench_health_watchdog_scan_cost(bench_record):
    """Scanning a 64-unit in-flight table stays under 1 ms."""
    from repro.runtime.spec import RunSpec

    wd = StallWatchdog(multiple=4.0, min_stall_s=3600.0, poll_s=0.25)
    now = time.perf_counter()
    in_flight = {
        object(): (((i, RunSpec(fn="repro.runtime.tasks:rng_probe_task",
                                index=i, params={}, seed=i)),), now)
        for i in range(64)
    }
    wd.scan(in_flight, now=now)  # warm
    n = 200
    t0 = time.perf_counter()
    for _ in range(n):
        wd.scan(in_flight, now=now)
    per_scan = (time.perf_counter() - t0) / n
    assert wd.n_stalled == 0  # nothing past a one-hour floor
    bench_record(n_units=64, t_per_scan_s=per_scan)
    print(f"\nwatchdog scan (64 units): {per_scan * 1e6:.1f} us")
    assert per_scan < 1e-3, f"watchdog scan costs {per_scan * 1e6:.0f} us"
