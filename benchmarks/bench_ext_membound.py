"""Benchmark: the memory-bound idle-wave extension experiment.

Regenerates the core-bound vs. saturated comparison (paper Sec. VII
outlook) and asserts that saturation absorbs part of an injected delay.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_ext_membound(once):
    result = once(run_experiment, "ext_membound", fast=True)
    print()
    print(result.render())

    cb = result.data["core-bound (scalable)"]["excess_fraction"]
    mb = result.data["memory-bound (saturated)"]["excess_fraction"]
    assert cb == pytest.approx(1.0, rel=0.02)
    assert mb < cb - 0.1
