"""Benchmark: live-observability overhead on the campaign runtime.

The obs layer's contract mirrors telemetry's: watching a run must be
cheap enough to leave on.  Measured on the heaviest batched path we
have — a 64-draw batched forced-DAG campaign through ``run_campaign``
— a fully observed run (event bus + run tracker + progress renderer at
its production 10 Hz throttle, exactly what ``--progress`` attaches)
must cost **< 2%** over an unobserved one.  The disabled ``emit()``
site must be a sub-microsecond module-global ``None`` check.

Both sides are timed as a min over repetitions (the noise-robust
estimator for a deterministic workload), and the observed run's values
are asserted equal to the plain run's — observation is pure.
"""

import io
import time

from repro.obs import events
from repro.obs.ledger import RunTracker
from repro.obs.progress import ProgressRenderer
from repro.runtime import run_campaign
from repro.scenarios import (
    ScenarioTaskBatcher,
    load_bundled_scenario,
    scenario_sweep_spec,
)
from repro.scenarios.spec import ScenarioSpec, apply_overrides

N_DRAWS = 64
MAX_OVERHEAD = 0.02


def _forced_dag_tasks():
    doc = load_bundled_scenario(
        "meggie_bimodal_rendezvous_campaign").without_sweep().to_dict()
    doc = apply_overrides(doc, {"n_ranks": 32, "n_steps": 25})
    doc["sweep"] = {"replicates": N_DRAWS}
    return scenario_sweep_spec(
        ScenarioSpec.from_dict(doc), engine="dag").tasks()


def _min_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_obs_overhead_live_progress(once, bench_record):
    """A watched 64-draw batched DAG campaign costs < 2%."""
    tasks = _forced_dag_tasks()

    def plain():
        return run_campaign(tasks, jobs=1, batcher=ScenarioTaskBatcher())

    def observed():
        bus = events.enable()
        tracker = RunTracker()
        bus.subscribe(tracker.handle)
        renderer = ProgressRenderer(stream=io.StringIO())
        bus.subscribe(renderer.handle)
        bus.emit("run.start", kind="scenario.sweep", name="bench_obs",
                 n_tasks=len(tasks))
        try:
            return run_campaign(tasks, jobs=1,
                                batcher=ScenarioTaskBatcher())
        finally:
            bus.emit("run.finish", status="ok")
            events.disable()

    # Warm every cache (DAG structure, numpy buffers) before timing.
    reference = plain()
    assert not events.enabled()

    reps = 7
    t_off = _min_of(plain, reps)
    t_on = _min_of(observed, reps)

    watched = observed()
    assert watched.values() == reference.values()  # observation is pure
    assert not events.enabled()

    once(plain)

    overhead = t_on / t_off - 1.0
    # Recorded as a guarded ratio so benchmarks/check_regression.py gates
    # it with the same machinery as the engine speedups: the "speedup" is
    # the off/on ratio, >= ~0.98 when the overhead contract holds.
    bench_record(n_draws=N_DRAWS, t_unobserved_s=t_off, t_observed_s=t_on,
                 overhead_fraction=overhead, speedup=t_off / t_on)
    print(f"\nobs overhead: unobserved {t_off * 1e3:.2f} ms, observed "
          f"{t_on * 1e3:.2f} ms ({overhead * 100:+.2f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"live-progress overhead {overhead:.1%} >= {MAX_OVERHEAD:.0%}"
    )


def test_bench_obs_disabled_emit_cost(bench_record):
    """A disabled emit site is one global None check: < 1 µs."""
    assert not events.enabled()
    n = 100_000
    t0 = time.perf_counter()
    for i in range(n):
        events.emit("bench.noop", index=i)
    per_site = (time.perf_counter() - t0) / n
    bench_record(n_emits=n, t_per_emit_s=per_site)
    print(f"\ndisabled emit crossing: {per_site * 1e9:.0f} ns")
    assert per_site < 1e-6, f"disabled emit costs {per_site * 1e9:.0f} ns"
