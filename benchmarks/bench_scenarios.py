"""Benchmark: the declarative scenario pipeline.

Measures the two costs the subsystem's design hinges on:

- **compile overhead** — parse + validate + compile every bundled
  scenario.  The compiler sits in front of every run and every sweep
  point, so it must be cheap: asserted < 5 ms per scenario (it is
  typically well under 1 ms).
- **lockstep-dispatch speedup** — the compiler routes lockstep-eligible
  scenarios to the vectorized engine; running the same scenario with the
  forced DAG engine shows what that dispatch buys.  Both engines must
  agree to machine precision while the lockstep path runs much faster
  on a large rank/step grid.
"""

import time

import numpy as np

from repro.scenarios import (
    ScenarioSpec,
    bundled_scenario_names,
    compile_scenario,
    load_bundled_scenario,
    run_scenario,
)

COMPILE_BUDGET_S = 5e-3  # the design target: < 5 ms per scenario


def test_bench_scenario_compile_overhead(once):
    names = bundled_scenario_names()
    specs = [load_bundled_scenario(name) for name in names]

    def compile_all(reps: int = 20):
        for _ in range(reps):
            for spec in specs:
                compile_scenario(spec)
        return reps * len(specs)

    n = once(compile_all)
    # Re-time outside the benchmark fixture for the per-scenario figure.
    t0 = time.perf_counter()
    compile_all(reps=20)
    per_scenario = (time.perf_counter() - t0) / n
    print(f"\ncompile: {per_scenario * 1e6:.0f} µs/scenario "
          f"({len(specs)} bundled scenarios)")
    assert per_scenario < COMPILE_BUDGET_S


def test_bench_scenario_load_and_compile_budget():
    """End-to-end file → spec → compiled, per bundled scenario file."""
    names = bundled_scenario_names()
    t0 = time.perf_counter()
    for name in names:
        compile_scenario(load_bundled_scenario(name))
    per_scenario = (time.perf_counter() - t0) / len(names)
    print(f"\nload+compile: {per_scenario * 1e3:.2f} ms/scenario")
    assert per_scenario < COMPILE_BUDGET_S


def test_bench_scenario_lockstep_dispatch_speedup(once):
    spec = ScenarioSpec.from_dict({
        "name": "dispatch_bench",
        "n_ranks": 100,
        "n_steps": 400,
        "machine": {"preset": "simulated"},
        "comm": {"direction": "bidirectional", "periodic": True},
        "noise": {"model": "exponential", "level": 0.05},
        "delays": [{"rank": 50, "step": 0, "phases": 6.0}],
        "outputs": ["runtime"],
    })

    def run_both():
        t0 = time.perf_counter()
        fast = run_scenario(spec, engine="lockstep")
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = run_scenario(spec, engine="dag")
        t_slow = time.perf_counter() - t0
        return fast, slow, t_fast, t_slow

    fast, slow, t_fast, t_slow = once(run_both)
    print(f"\nlockstep {t_fast * 1e3:.0f}ms vs DAG {t_slow * 1e3:.0f}ms "
          f"(dispatch speedup {t_slow / t_fast:.1f}x)")

    np.testing.assert_allclose(
        fast.timing.completion, slow.timing.completion, rtol=1e-12, atol=1e-12
    )
    assert t_slow / t_fast > 3.0
