"""Benchmark: the report subsystem's vectorized metric kernels.

The tentpole claims of the report pipeline, measured:

- **kernel-level speedup** — the full metric set of a 64-draw batched
  campaign (decay rate, wave fit, desync indices, runtime/idle summaries)
  extracted by the vectorized ``(B, P, S)`` kernels versus an equivalent
  per-draw loop over the scalar :mod:`repro.core` / :mod:`repro.analysis`
  functions.  Asserted >= 5x, with every extracted value agreeing to
  1e-9 relative.
- **store-backed report latency** — a bundled report executed cold
  (engine dispatch) and then warm against the same result store.  The
  warm run must perform zero engine executions and beat the cold run's
  wall clock.
"""

import time

import numpy as np

from repro.analysis.desync import desync_onset, overlap_efficiency, skew_spread
from repro.core.decay import measure_decay
from repro.core.speed import measure_speed
from repro.reports import (
    BatchedTiming,
    MetricContext,
    compile_report,
    get_kernel,
    load_bundled_report,
    run_report,
)
from repro.runtime import ResultStore
from repro.scenarios import compile_scenario, load_bundled_scenario
from repro.scenarios.runner import prepare_scenario_run
from repro.sim import simulate_lockstep_batch

N_DRAWS = 64


def _build_batch():
    """64 draws of the Fig. 8 decay scenario as one batched timing stack."""
    spec = load_bundled_scenario("fig8_decay_rate").without_sweep()
    compiled = compile_scenario(spec)
    assert compiled.engine == "lockstep"
    prepared = [prepare_scenario_run(compiled, seed) for seed in range(N_DRAWS)]
    result = simulate_lockstep_batch(
        compiled.cfg, np.stack([p.exec_times for p in prepared]),
        network=compiled.network, domain=compiled.domain,
        protocol=compiled.protocol, eager_limit=compiled.eager_limit,
        mapping=compiled.mapping,
    )
    return compiled, BatchedTiming.from_lockstep_batch(result)


def _kernel_metrics(batch, ctx):
    # Clear the per-batch memo (threshold, wave front) so every timed
    # repetition pays the full extraction cost — sharing *within* one
    # report pass is legitimate, carrying it across passes would let the
    # benchmark time a cache hit instead of the kernels.
    batch._cache.clear()
    out = {}
    for name in ("runtime", "decay_rate", "desync", "idle_histogram",
                 "wave_speed"):
        out.update(get_kernel(name).compute(batch, ctx))
    return out


def _per_draw_metrics(batch, ctx):
    """The same quantities via the scalar per-draw functions (the old way)."""
    out = {key: np.empty(batch.n_batch) for key in (
        "total_runtime", "total_idle", "beta", "final_skew", "max_skew",
        "overlap_efficiency", "mean_idle", "measured_speed")}
    source = ctx.source
    for b in range(batch.n_batch):
        timing = batch[b]
        out["total_runtime"][b] = timing.total_runtime()
        out["total_idle"][b] = timing.total_idle()
        out["beta"][b] = measure_decay(
            timing, source, direction=+1, periodic=ctx.periodic).beta
        spread = skew_spread(timing)
        out["final_skew"][b] = spread[-1]
        out["max_skew"][b] = spread.max()
        desync_onset(timing)
        out["overlap_efficiency"][b] = overlap_efficiency(timing)
        positive = timing.idle[timing.idle > 0]
        out["mean_idle"][b] = positive.mean() if positive.size else 0.0
        try:
            out["measured_speed"][b] = measure_speed(
                timing, source, direction=+1, periodic=ctx.periodic).speed
        except ValueError:
            out["measured_speed"][b] = np.nan
    return out


def test_bench_report_kernels_vs_per_draw_loop(once, bench_record):
    """Vectorized kernels on a 64-draw campaign: >= 5x over the scalar loop."""
    compiled, batch = _build_batch()
    ctx = MetricContext(compiled=compiled)

    # Warm both paths, then time each over a few repetitions.
    vectorized = _kernel_metrics(batch, ctx)
    scalar = _per_draw_metrics(batch, ctx)

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        _per_draw_metrics(batch, ctx)
    t_loop = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        _kernel_metrics(batch, ctx)
    t_kernel = (time.perf_counter() - t0) / reps

    once(_kernel_metrics, batch, ctx)  # record the kernels in the bench table

    speedup = t_loop / t_kernel
    print(f"\n{N_DRAWS}-draw metric extraction: per-draw {t_loop * 1e3:.1f} ms, "
          f"vectorized {t_kernel * 1e3:.1f} ms ({speedup:.1f}x)")
    bench_record(n_draws=N_DRAWS, t_per_draw_s=t_loop,
                 t_vectorized_s=t_kernel, speedup=speedup)

    # Correctness alongside speed: every field agrees with the scalar path.
    for kernel_field, scalar_field in (
            ("total_runtime", "total_runtime"), ("total_idle", "total_idle"),
            ("beta", "beta"), ("final_skew", "final_skew"),
            ("max_skew", "max_skew"),
            ("overlap_efficiency", "overlap_efficiency"),
            ("mean_idle", "mean_idle"), ("measured_speed", "measured_speed")):
        np.testing.assert_allclose(
            vectorized[kernel_field], scalar[scalar_field],
            rtol=1e-9, atol=0, equal_nan=True, err_msg=kernel_field,
        )
    assert speedup >= 5.0, f"kernel speedup {speedup:.2f}x < 5x"


def test_bench_report_store_backed_rerun(once, tmp_path, bench_record):
    """A warm report rerun loads everything by spec key: zero executions."""
    store = ResultStore(tmp_path / "store")
    report = compile_report(load_bundled_report("campaign_rate_response"))

    t0 = time.perf_counter()
    cold = run_report(report, store=store)
    t_cold = time.perf_counter() - t0
    assert cold.n_executed == cold.n_tasks and cold.n_loaded == 0

    warm = once(run_report, report, store=store)
    t0 = time.perf_counter()
    warm2 = run_report(report, store=store)
    warm_elapsed = time.perf_counter() - t0

    for result in (warm, warm2):
        assert result.n_executed == 0
        assert result.n_loaded == result.n_tasks
        assert [r.values for r in result.rows] == [r.values for r in cold.rows]

    print(f"\nreport {report.spec.name}: cold {t_cold * 1e3:.1f} ms "
          f"({cold.n_executed} executed) vs warm {warm_elapsed * 1e3:.1f} ms "
          f"(0 executed)")
    bench_record(n_tasks=cold.n_tasks, t_cold_s=t_cold, t_warm_s=warm_elapsed,
                 speedup=t_cold / max(warm_elapsed, 1e-9))
    assert warm_elapsed < t_cold
