"""Benchmark: the collective-communication extension experiment.

Regenerates the delay-spreading comparison across collective algorithms
(the paper's Sec. VII outlook direction) and asserts the exponential-vs-
linear spreading contrast.
"""

from repro.experiments import run_experiment


def test_bench_ext_collectives(once):
    result = once(run_experiment, "ext_collectives", fast=True)
    print()
    print(result.render())

    for name in ("barrier", "allreduce_recdoub", "allreduce_ring"):
        assert result.data[name]["reach_one_step"] == 15
    assert result.data["bcast_tree"]["reach_one_step"] < 15
