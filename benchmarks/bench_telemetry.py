"""Benchmark: telemetry overhead on the hot engine path.

The telemetry layer's contract is that it is cheap enough to leave on:
a profiled run (``--profile``) must cost **< 2%** over an unprofiled one
on the heaviest engine path we have — a 64-draw batched forced-DAG
campaign propagation, which exercises the ``engine.dag.propagate`` span,
the ``dag.cache.*`` counters, and the span machinery around the batched
sweep.  The disabled path must be indistinguishable from no
instrumentation at all (a module-global ``None`` check).

Both sides are timed as a min over repetitions: the minimum is the
noise-robust estimator for a deterministic workload (anything above the
minimum is scheduler/allocator interference, not the code under test).
"""

import time

import numpy as np

from repro import telemetry
from repro.scenarios import compile_scenario, load_bundled_scenario
from repro.scenarios.runner import prepare_scenario_run
from repro.scenarios.spec import ScenarioSpec, apply_overrides
from repro.sim import simulate_dag_batch

N_DRAWS = 64
MAX_OVERHEAD = 0.02


def _forced_dag_campaign():
    doc = load_bundled_scenario(
        "meggie_bimodal_rendezvous_campaign").without_sweep().to_dict()
    doc = apply_overrides(doc, {"n_ranks": 32, "n_steps": 25})
    return compile_scenario(ScenarioSpec.from_dict(doc), engine="dag")


def _min_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_telemetry_overhead_enabled(once, bench_record):
    """Enabled telemetry costs < 2% on a 64-draw batched DAG campaign."""
    compiled = _forced_dag_campaign()
    config = compiled.sim_config()
    prepared = [prepare_scenario_run(compiled, seed) for seed in range(N_DRAWS)]
    stacked = np.stack([p.exec_times for p in prepared])

    def workload():
        return simulate_dag_batch(compiled.cfg, stacked, config)

    # Warm every cache (DAG structure, numpy buffers) before timing.
    reference = workload()
    assert not telemetry.enabled()

    reps = 7
    t_off = _min_of(workload, reps)
    telemetry.enable()
    try:
        t_on = _min_of(workload, reps)
        profiled = workload()
        rec = telemetry.current_recorder()
        # The profiled run must actually have recorded the hot path...
        assert any(s[2] == "engine.dag.propagate" for s in rec.iter_spans())
        assert rec.counters.get("dag.cache.hits", 0) > 0
    finally:
        telemetry.disable()
    # ...without perturbing results.
    for b in range(N_DRAWS):
        assert np.array_equal(profiled[b].completion, reference[b].completion)

    once(workload)

    overhead = t_on / t_off - 1.0
    # Recorded as a guarded ratio so benchmarks/check_regression.py gates
    # it with the same machinery as the engine speedups: the "speedup" is
    # the off/on ratio, >= ~0.98 when the overhead contract holds.
    bench_record(n_draws=N_DRAWS, t_disabled_s=t_off, t_enabled_s=t_on,
                 overhead_fraction=overhead, speedup=t_off / t_on)
    print(f"\ntelemetry overhead: disabled {t_off * 1e3:.2f} ms, enabled "
          f"{t_on * 1e3:.2f} ms ({overhead * 100:+.2f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} >= {MAX_OVERHEAD:.0%}"
    )


def test_bench_telemetry_disabled_span_cost(bench_record):
    """A disabled span site is a dict-free no-op: < 1 µs per crossing."""
    assert not telemetry.enabled()
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with telemetry.span("bench.noop"):
            pass
        telemetry.count("bench.noop")
    per_site = (time.perf_counter() - t0) / n
    bench_record(n_crossings=n, t_per_crossing_s=per_site)
    print(f"\ndisabled span+counter crossing: {per_site * 1e9:.0f} ns")
    assert per_site < 1e-6, f"disabled telemetry costs {per_site * 1e9:.0f} ns"
