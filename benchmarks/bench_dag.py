"""Benchmark: build-once/propagate-many DAG engine.

The tentpole claims of the StaticDag rewrite, measured:

- **batched propagation speedup** — a 64-draw bimodal delay campaign
  forced onto the DAG reference engine, simulated as one
  ``(n_nodes, 64)`` level sweep versus 64 per-draw ``simulate()``
  invocations (full trace materialization, as before the rewrite).
  Asserted >= 3x; the batch amortizes graph construction, the per-level
  Python loop, *and* skips OpRecord materialization entirely.
- **structure-cache hit latency** — ``build_dag`` on a warm cache versus
  a cold graph construction.  Campaign draws vary only delays/noise, so
  every draw after the first should pay near-zero build cost.

Correctness is asserted alongside speed: every batch slice must be
bitwise identical to the scalar trace path.
"""

import time

import numpy as np

from repro.scenarios import compile_scenario, load_bundled_scenario
from repro.scenarios.runner import prepare_scenario_run
from repro.scenarios.spec import apply_overrides
from repro.sim import (
    build_dag,
    build_lockstep_program,
    clear_dag_cache,
    dag_cache_info,
    simulate,
    simulate_dag_batch,
)

N_DRAWS = 64


def _forced_dag_campaign():
    """The bimodal rendezvous campaign (shrunk), compiled for the DAG engine."""
    doc = load_bundled_scenario(
        "meggie_bimodal_rendezvous_campaign").without_sweep().to_dict()
    doc = apply_overrides(doc, {"n_ranks": 32, "n_steps": 25})
    from repro.scenarios.spec import ScenarioSpec

    return compile_scenario(ScenarioSpec.from_dict(doc), engine="dag")


def test_bench_dag_batched_speedup_64_draw_campaign(once, bench_record):
    """One batched StaticDag propagation vs 64 per-draw simulate(), >= 3x."""
    compiled = _forced_dag_campaign()
    assert compiled.engine == "dag"
    config = compiled.sim_config()
    prepared = [prepare_scenario_run(compiled, seed) for seed in range(N_DRAWS)]
    stacked = np.stack([p.exec_times for p in prepared])

    def per_draw():
        return [
            simulate(build_lockstep_program(p.cfg, p.exec_times), config)
            for p in prepared
        ]

    def batched():
        return simulate_dag_batch(compiled.cfg, stacked, config)

    # Warm both paths (and the structure cache), then time repetitions.
    serial_traces = per_draw()
    batch_result = batched()

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        per_draw()
    t_serial = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        batched()
    t_batched = (time.perf_counter() - t0) / reps

    once(batched)  # record the batched path in the benchmark table

    speedup = t_serial / t_batched
    print(f"\n{N_DRAWS}-draw forced-DAG campaign: per-draw "
          f"{t_serial * 1e3:.1f} ms, batched {t_batched * 1e3:.1f} ms "
          f"({speedup:.1f}x)")
    info = dag_cache_info()
    hit_rate = info["hits"] / max(info["hits"] + info["misses"], 1)
    bench_record(n_draws=N_DRAWS, t_per_draw_s=t_serial,
                 t_batched_s=t_batched, speedup=speedup,
                 cache_hit_rate=hit_rate)

    # Correctness alongside speed: slices are bitwise equal to the traces.
    for b, trace in enumerate(serial_traces):
        assert np.array_equal(batch_result[b].completion,
                              trace.completion_matrix())
        assert np.array_equal(batch_result[b].idle, trace.idle_matrix())
    assert speedup >= 3.0, f"batched DAG speedup {speedup:.2f}x < 3x"


def test_bench_dag_structure_cache_hit(once, bench_record):
    """A warm build_dag is a dictionary lookup, not a graph construction."""
    compiled = _forced_dag_campaign()
    config = compiled.sim_config()
    prepared = prepare_scenario_run(compiled, 0)
    program = build_lockstep_program(prepared.cfg, prepared.exec_times)

    reps = 10
    t0 = time.perf_counter()
    for _ in range(reps):
        clear_dag_cache()
        build_dag(program, config)
    t_cold = (time.perf_counter() - t0) / reps

    clear_dag_cache()
    build_dag(program, config)  # populate
    t0 = time.perf_counter()
    for _ in range(reps):
        build_dag(program, config)
    t_warm = (time.perf_counter() - t0) / reps
    assert dag_cache_info()["hits"] >= reps

    once(build_dag, program, config)

    speedup = t_cold / max(t_warm, 1e-12)
    print(f"\nstructure cache: cold build {t_cold * 1e3:.2f} ms, warm hit "
          f"{t_warm * 1e3:.3f} ms ({speedup:.0f}x)")
    info = dag_cache_info()
    hit_rate = info["hits"] / max(info["hits"] + info["misses"], 1)
    bench_record(t_cold_build_s=t_cold, t_warm_hit_s=t_warm, speedup=speedup,
                 cache_hit_rate=hit_rate)
    assert t_warm < t_cold, "cache hit slower than a cold build"
