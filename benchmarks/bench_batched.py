"""Benchmark: batched lockstep execution of delay-campaign draws.

The tentpole claims of the batched engine path, measured:

- **engine-level speedup** — a 64-draw Poisson campaign
  (``campaign_rate_sweep``'s base point) simulated as one
  ``[64, P, S]`` batched recurrence versus 64 per-draw engine
  invocations.  Asserted >= 3x; the batch amortizes the Python-level
  per-step loop across all draws, so it is typically far higher.
- **sweep-level speedup and bit-identity** — the full scenario sweep
  through the campaign runtime with and without the batcher.  The batched
  campaign must return byte-identical per-task values (the property that
  keeps the content-addressed cache coherent) while running faster.
- **hierarchy dispatch win** — the previously DAG-bound ``machine.ppn``
  scenario on its new lockstep path versus the forced DAG reference.
"""

import time

import numpy as np

from repro.scenarios import (
    compile_scenario,
    load_bundled_scenario,
    run_scenario,
    run_scenario_batch,
    run_scenario_sweep,
)
from repro.scenarios.runner import prepare_scenario_run
from repro.sim import simulate_lockstep, simulate_lockstep_batch

N_DRAWS = 64


def test_bench_batched_engine_speedup_64_draw_campaign(once, bench_record):
    """One batched call vs 64 per-draw engine invocations, >= 3x."""
    spec = load_bundled_scenario("campaign_rate_sweep").without_sweep()
    compiled = compile_scenario(spec)
    assert compiled.engine == "lockstep"
    prepared = [prepare_scenario_run(compiled, seed) for seed in range(N_DRAWS)]
    stacked = np.stack([p.exec_times for p in prepared])

    def per_draw():
        return [
            simulate_lockstep(
                p.cfg, exec_times=p.exec_times, network=compiled.network,
                domain=compiled.domain, protocol=compiled.protocol,
                eager_limit=compiled.eager_limit, mapping=compiled.mapping,
            )
            for p in prepared
        ]

    def batched():
        return simulate_lockstep_batch(
            compiled.cfg, stacked, network=compiled.network,
            domain=compiled.domain, protocol=compiled.protocol,
            eager_limit=compiled.eager_limit, mapping=compiled.mapping,
        )

    # Warm both paths, then time each over a few repetitions.
    serial_results = per_draw()
    batch_result = batched()

    reps = 5
    t0 = time.perf_counter()
    for _ in range(reps):
        per_draw()
    t_serial = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        batched()
    t_batched = (time.perf_counter() - t0) / reps

    once(batched)  # record the batched path in the benchmark table

    speedup = t_serial / t_batched
    print(f"\n{N_DRAWS}-draw campaign: per-draw {t_serial * 1e3:.1f} ms, "
          f"batched {t_batched * 1e3:.1f} ms ({speedup:.1f}x)")
    bench_record(n_draws=N_DRAWS, t_per_draw_s=t_serial,
                 t_batched_s=t_batched, speedup=speedup)

    # Correctness alongside speed: slices are bit-identical to the draws.
    for b, serial in enumerate(serial_results):
        assert np.array_equal(batch_result[b].completion, serial.completion)
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x < 3x"


def test_bench_batched_sweep_bit_identity_and_speedup(once, bench_record):
    """The sweep runtime with the batcher: same bytes, less wall clock."""
    spec = load_bundled_scenario("campaign_rate_sweep")

    def run(batch: bool):
        return run_scenario_sweep(spec, jobs=1, batch=batch)

    unbatched = run(batch=False)
    batched = run(batch=True)
    assert batched.campaign.values() == unbatched.campaign.values()
    assert batched.points == unbatched.points

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        run(batch=False)
    t_serial = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        run(batch=True)
    t_batched = (time.perf_counter() - t0) / reps

    once(run, True)
    print(f"\nsweep ({len(batched.campaign)} tasks): unbatched "
          f"{t_serial * 1e3:.1f} ms, batched {t_batched * 1e3:.1f} ms "
          f"({t_serial / t_batched:.1f}x)")
    bench_record(n_tasks=len(batched.campaign), t_unbatched_s=t_serial,
                 t_batched_s=t_batched, speedup=t_serial / t_batched)
    assert t_batched < t_serial


def test_bench_hierarchical_lockstep_vs_dag(once, bench_record):
    """The two-tier scenario's lockstep dispatch vs the DAG reference."""
    spec = load_bundled_scenario("emmy_mapped_dag")

    def both():
        t0 = time.perf_counter()
        fast = run_scenario(spec)  # auto -> hierarchy-aware lockstep
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = run_scenario(spec, engine="dag")
        t_slow = time.perf_counter() - t0
        return fast, slow, t_fast, t_slow

    fast, slow, t_fast, t_slow = once(both)
    assert fast.compiled.engine == "lockstep"
    assert slow.compiled.engine == "dag"
    np.testing.assert_allclose(
        fast.timing.completion, slow.timing.completion, rtol=1e-9, atol=0,
    )
    print(f"\nhierarchical: lockstep {t_fast * 1e3:.1f} ms vs DAG "
          f"{t_slow * 1e3:.1f} ms ({t_slow / max(t_fast, 1e-9):.1f}x)")
    bench_record(t_lockstep_s=t_fast, t_dag_s=t_slow,
                 speedup=t_slow / max(t_fast, 1e-9))


def test_bench_batched_hierarchical_campaign(once):
    """Batching composes with hierarchy: B draws of the ppn scenario."""
    spec = load_bundled_scenario("emmy_mapped_dag")
    compiled = compile_scenario(spec)
    seeds = list(range(16))

    def batched():
        return run_scenario_batch(compiled, seeds)

    runs = once(batched)
    assert len(runs) == len(seeds)
    reference = run_scenario(compiled, seed=seeds[3])
    assert np.array_equal(runs[3].timing.completion,
                          reference.timing.completion)
