"""Benchmark: regenerate Fig. 8 — decay rate vs. noise level.

Prints the three systems' median/min/max decay rates per noise level and
asserts the positive correlation on every system.
"""

from repro.experiments import run_experiment


def test_bench_fig8_decay_rate(once):
    result = once(run_experiment, "fig8", fast=True)
    print()
    print(result.render())

    for system, series in result.data["series"].items():
        medians = [pt["stats"].median for pt in series]
        assert medians[-1] > medians[0] > 0, system
