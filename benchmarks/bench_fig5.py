"""Benchmark: regenerate Fig. 5 — all eight propagation flavors.

Prints the per-panel summary (reach, speed, meeting ranks, resync) and
asserts each panel's mechanism.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_fig5_flavors(once):
    result = once(run_experiment, "fig5", fast=True)
    print()
    print(result.render())

    data = result.data
    assert data["(a) eager uni open"]["down_reach"] == 0
    assert data["(e) rdv uni open"]["down_reach"] == 5
    ratio = data["(g) rdv bi open"]["speed_up"] / data["(e) rdv uni open"]["speed_up"]
    assert ratio == pytest.approx(2.0, rel=0.02)
    assert data["(d) eager bi periodic"]["meeting_ranks"] == [14]
