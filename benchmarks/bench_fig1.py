"""Benchmark: regenerate Fig. 1 — STREAM triad strong scaling.

Prints the paper's three panels as rows (sockets vs. measured/model
performance) and asserts the headline shape: measured execution performance
above the linear model at multi-socket scale, accurate model at PPN=1.
"""

from repro.experiments import run_experiment


def test_bench_fig1_stream_scaling(once):
    result = once(run_experiment, "fig1", fast=True)
    print()
    print(result.render())

    for point in result.data["a"]:
        if point["sockets"] >= 4:
            assert point["p_exec"] > 1.05 * point["model_exec"]
    for point in result.data["c"]:
        rel = abs(point["p_total"] - point["model_total"]) / point["model_total"]
        assert rel < 0.10
