"""Benchmark: the hybrid MPI/OpenMP extension experiment.

Regenerates the thread-group-size scan (paper Sec. VII outlook) and asserts
its two monotone trends: effective per-phase noise up, inter-process skew
down.
"""

from repro.experiments import run_experiment


def test_bench_ext_hybrid(once):
    result = once(run_experiment, "ext_hybrid", fast=True)
    print()
    print(result.render())

    threads = sorted(result.data)
    noises = [result.data[t]["effective_noise"] for t in threads]
    skews = [result.data[t]["skew"] for t in threads]
    assert all(b > a for a, b in zip(noises, noises[1:]))
    assert skews[-1] < skews[0]
