"""Benchmark: packed result-store backend vs the per-file layout.

Builds a 10k-record corpus in the legacy one-file-per-record layout,
measures the two operations a large sweep leans on, then migrates the
corpus into packed shards (``store migrate`` + ``store gc``) and
measures again on a fresh store instance:

- **entries()** — the full store listing the CLI and gc walk.  Per-file
  it opens every JSON record; packed it reads a handful of sidecar
  indexes.  The acceptance gate for the sharded backend is >= 3x here.
- **warm get()** — random-access lookup latency over a sample of keys.
  Per-file each get opens and parses its own file; packed it is one
  index probe plus a slice of an already-mapped shard.

Migration itself is asserted lossless (same keys before and after) so
the benchmark doubles as a 10k-record migration test.
"""

import random
import time

import pytest

from repro.runtime import ResultStore

N_RECORDS = 10_000
N_GETS = 2_000


def _timed(fn, *args):
    t0 = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A legacy-layout store with ``N_RECORDS`` tiny records.

    Shared (and migrated in place) by both benchmarks: the entries
    benchmark measures the per-file layout, migrates, and stashes the
    legacy timings here for the warm-get benchmark that runs after it.
    """
    root = tmp_path_factory.mktemp("bench-store") / "cache"
    store = ResultStore(root, layout="file")
    keys = [f"{i:032x}" for i in range(N_RECORDS)]
    for i, key in enumerate(keys):
        store.put(key, {"runtime": i * 1e-4, "replicate": i},
                  spec={"fn": "bench:tiny", "seed": i})
    return {"root": root, "keys": keys, "timings": {}}


def test_bench_store_entries(corpus, once, bench_record):
    store = ResultStore(corpus["root"], layout="file")
    sample = random.Random(7).sample(corpus["keys"], N_GETS)

    def measure_legacy():
        entries, t_entries = _timed(lambda: list(store.entries()))
        _, t_gets = _timed(lambda: [store.get(k) for k in sample])
        return entries, t_entries, t_gets

    legacy_entries, t_legacy, t_legacy_gets = once(measure_legacy)
    assert len(legacy_entries) == N_RECORDS
    corpus["timings"]["legacy_gets_s"] = t_legacy_gets

    # Pack the corpus and drop the per-file originals, as a deployment
    # would: ``store migrate`` then ``store gc``.
    migrated = ResultStore(corpus["root"])
    stats = migrated.migrate()
    assert stats.n_packed == N_RECORDS and stats.n_skipped == 0
    gc_stats = migrated.gc(min_age_s=0)
    assert gc_stats.n_migrated == N_RECORDS

    packed = ResultStore(corpus["root"])  # fresh instance, cold index
    packed_entries, t_packed = _timed(lambda: list(packed.entries()))
    assert len(packed_entries) == N_RECORDS
    assert {e.key for e in packed_entries} == set(corpus["keys"])

    speedup = t_legacy / max(t_packed, 1e-9)
    print(f"\nentries() over {N_RECORDS} records: per-file {t_legacy:.3f}s "
          f"vs packed {t_packed * 1e3:.1f}ms (speedup {speedup:.1f}x)")
    bench_record(n_records=N_RECORDS, t_legacy_s=t_legacy,
                 t_packed_s=t_packed, speedup=speedup)
    # The acceptance gate for the sharded backend: listing must not
    # degenerate back into a 10k-file directory walk.
    assert speedup >= 3.0


def test_bench_store_warm_get(corpus, once, bench_record):
    t_legacy = corpus["timings"].get("legacy_gets_s")
    assert t_legacy is not None, "entries benchmark must run first"
    sample = random.Random(7).sample(corpus["keys"], N_GETS)

    store = ResultStore(corpus["root"])  # migrated by the test above
    assert store.packed_active
    store.get(sample[0])  # prime the index + shard mappings

    def measure_packed():
        return _timed(lambda: [store.get(k) for k in sample])

    values, t_packed = once(measure_packed)
    assert all(v is not None for v in values)

    speedup = t_legacy / max(t_packed, 1e-9)
    print(f"\nwarm get() x{N_GETS}: per-file {t_legacy:.3f}s vs packed "
          f"{t_packed:.3f}s (speedup {speedup:.2f}x)")
    bench_record(n_gets=N_GETS, t_legacy_s=t_legacy, t_packed_s=t_packed,
                 speedup=speedup)
    # Collapse guard only: packed random access must stay in the same
    # league as per-file reads (the win is entries(); gets must not pay
    # for it).
    assert speedup >= 0.5
