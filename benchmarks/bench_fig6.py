"""Benchmark: regenerate Fig. 6 — interacting idle waves.

Prints the per-scenario summary (waves, resync step, superposition defect)
and asserts the cancellation ordering: equal < half < never (random).
"""

from repro.experiments import run_experiment


def test_bench_fig6_interaction(once):
    result = once(run_experiment, "fig6", fast=True)
    print()
    print(result.render())

    equal = result.data["equal"]["resync_step"]
    half = result.data["half"]["resync_step"]
    rand = result.data["random"]["resync_step"]
    assert equal is not None and half is not None and rand is None
    assert equal < half
    for scenario in ("equal", "half", "random"):
        assert result.data[scenario]["superposition_defect"] < 0
