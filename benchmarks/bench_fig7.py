"""Benchmark: regenerate Fig. 7 — d=2 rendezvous speed comparison.

Prints the uni-vs-bi speed table and asserts the 2x ratio and Eq. 2
agreement.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_fig7_speed_d2(once):
    result = once(run_experiment, "fig7", fast=True)
    print()
    print(result.render())

    assert result.data["ratio"] == pytest.approx(2.0, rel=0.01)
    for panel in ("(a) unidirectional", "(b) bidirectional"):
        d = result.data[panel]
        assert d["speed"] == pytest.approx(d["model"], rel=0.01)
