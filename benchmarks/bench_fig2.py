"""Benchmark: regenerate Fig. 2 — LBM desynchronization timeline.

Prints the snapshot table (step, mean/model wall-clock position, spread,
dominant wavelength) and asserts the emergent long-wavelength pattern plus
the better-than-model runtime.
"""

from repro.experiments import run_experiment


def test_bench_fig2_lbm_timeline(once):
    result = once(run_experiment, "fig2", fast=True)
    print()
    print(result.render())

    late = [s for s in result.data["snapshots"] if s["step"] >= 100]
    assert any(s["wavelength"] >= 50 for s in late)
    assert result.data["deviation"] > 0  # faster than the model
