"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (table/figure data) inside
the timed region and asserts its key shape property afterwards, so a
benchmark run doubles as a reproduction run.  Heavy experiments use
``benchmark.pedantic`` with a single round to keep the suite's total
runtime bounded.

Benchmarks additionally record their headline numbers (timings, speedup
ratios) through the ``bench_record`` fixture; at session end each
benchmark module's records are written to ``BENCH_<name>.json`` (in
``$BENCH_JSON_DIR``, default the current directory), so the performance
trajectory is machine-readable and can be tracked across PRs — CI
uploads these files as build artifacts.
"""

import json
import os
from pathlib import Path

import pytest

_RECORDS: "dict[str, dict[str, dict]]" = {}


def pytest_addoption(parser):
    parser.addoption(
        "--chaos", action="store_true", default=False,
        help="run the chaos-injection benchmarks: campaigns under "
             "deterministic fault injection, asserting recovery and "
             "recording retry overhead (skipped by default)")


@pytest.fixture
def chaos_mode(request):
    """Skip unless the session opted into chaos benchmarks."""
    if not request.config.getoption("--chaos"):
        pytest.skip("chaos benchmarks run only with --chaos")


@pytest.fixture
def once(benchmark):
    """Run the callable exactly once inside the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture
def bench_record(request):
    """Record this test's headline numbers into ``BENCH_<module>.json``.

    Call with plain JSON-able keyword fields, e.g.
    ``bench_record(t_serial_s=1.2, t_batched_s=0.05, speedup=24.0)``.
    Repeated calls from one test merge (later keys win).
    """
    module = request.module.__name__

    def _record(**fields):
        _RECORDS.setdefault(module, {}).setdefault(
            request.node.name, {}).update(fields)

    return _record


def pytest_sessionfinish(session, exitstatus):
    out_dir = Path(os.environ.get("BENCH_JSON_DIR", "."))
    for module, tests in _RECORDS.items():
        name = module.removeprefix("bench_")
        payload = {
            "benchmark": module,
            "schema": 1,
            "tests": tests,
        }
        path = out_dir / f"BENCH_{name}.json"
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        except OSError as exc:  # never fail the suite over a report file
            print(f"[bench json: cannot write {path}: {exc}]")
