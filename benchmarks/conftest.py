"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (table/figure data) inside
the timed region and asserts its key shape property afterwards, so a
benchmark run doubles as a reproduction run.  Heavy experiments use
``benchmark.pedantic`` with a single round to keep the suite's total
runtime bounded.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the callable exactly once inside the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
