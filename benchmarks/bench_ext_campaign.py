"""Benchmark: the random-delay-campaign extension experiment.

Regenerates the injection-rate scan — now executed through the parallel
campaign runtime (``repro.runtime``) — and asserts the sublinear cost
law: the marginal runtime cost per injected delay-second falls
monotonically with the rate (wave cancellation at the system level).
Also asserts the runtime contract: a warm-cache rerun reproduces the
scan bit-identically without simulating anything.
"""

from repro.experiments import RuntimeOptions, run_experiment


def test_bench_ext_campaign(once):
    result = once(run_experiment, "ext_campaign", fast=True)
    print()
    print(result.render())

    rates = sorted(result.data)
    ratios = [result.data[r]["cost_ratio"] for r in rates]
    assert all(b < a for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] > 0.8  # sparse campaign: nearly full cost
    assert ratios[-1] < 0.5  # dense campaign: heavily absorbed


def test_bench_ext_campaign_warm_cache(once, tmp_path):
    """Second invocation is served from the store and is bit-identical."""
    opts = RuntimeOptions(jobs=1, cache_dir=tmp_path / "store")
    cold = run_experiment("ext_campaign", fast=True, runtime=opts)
    warm = once(run_experiment, "ext_campaign", fast=True, runtime=opts)

    assert warm.data == cold.data
    assert any("0 simulated" in note and "0 from cache" not in note
               for note in warm.notes)
