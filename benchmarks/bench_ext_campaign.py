"""Benchmark: the random-delay-campaign extension experiment.

Regenerates the injection-rate scan and asserts the sublinear cost law:
the marginal runtime cost per injected delay-second falls monotonically
with the rate (wave cancellation at the system level).
"""

from repro.experiments import run_experiment


def test_bench_ext_campaign(once):
    result = once(run_experiment, "ext_campaign", fast=True)
    print()
    print(result.render())

    rates = sorted(result.data)
    ratios = [result.data[r]["cost_ratio"] for r in rates]
    assert all(b < a for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] > 0.8  # sparse campaign: nearly full cost
    assert ratios[-1] < 0.5  # dense campaign: heavily absorbed
