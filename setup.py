"""Setup for the repro package.

Kept as a plain ``setup.py`` so that ``pip install -e .`` works in
offline environments without the ``wheel`` package (legacy editable
installs go through ``setup.py develop``).  The bundled scenario files
under ``repro/scenarios/data/`` are package data — they must ship with
the package for the scenario registry to work outside a source checkout.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Propagation and Decay of Injected One-Off Delays "
        "on Clusters' (IEEE CLUSTER 2019) on a built-in cluster simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro.scenarios": ["data/*.toml", "data/*.json"],
        "repro.reports": ["data/*.toml", "data/*.json"],
    },
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["repro-experiment = repro.cli:main"],
    },
)
