"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments without the ``wheel``
package (legacy editable installs go through ``setup.py develop``).
"""

from setuptools import setup

setup()
